// Closed-loop governor auto-tuning on the fleet runner (ROADMAP item 3).
//
// run_tuner searches a ParamSpace for the energy-minimal configuration
// subject to QoE constraints, independently per tuning cell (device
// profile × network class). The search is successive halving with
// seed-count escalation — a sampled population is screened on few seeds,
// survivors are promoted rung by rung to the full seed budget — followed
// by a compass (coordinate-descent) refinement stage and an optional
// per-dimension sensitivity sweep around the winner.
//
// Determinism contract: every candidate list is generated single-threaded
// as a pure function of (search seed, prior round scores); parallelism
// lives only inside fleet evaluation rounds, which are bit-identical at
// any --jobs/--shards/--batch; and all comparisons go through the
// canonical total order below. Same seed ⇒ byte-identical artifacts at
// any job count (DESIGN.md §12).
//
// Kill/resume: with a checkpoint directory set, completed rounds land in
// a durable state file (write_file_durable, FNV-checksummed like the
// fleet manifest) and the in-flight round checkpoints through the fleet
// v2 manifest layer in a per-round subdirectory. A resumed search replays
// recorded rounds without re-running a session, fleet-resumes the
// interrupted round mid-shard, and produces byte-identical artifacts to a
// search that was never killed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/session.h"
#include "exp/json.h"
#include "tune/param_space.h"

namespace vafs::tune {

/// QoE floors a tuned config must respect. A candidate violating any of
/// them is infeasible and dominated by every feasible point regardless of
/// how little energy it burns.
struct Constraints {
  /// Mean stall seconds per wall-clock second (rebuffer_s / wall_s).
  double max_rebuffer_ratio = 0.01;
  /// Mean dropped-frame percentage.
  double max_drop_pct = 2.0;
  /// Mean startup delay, seconds.
  double max_startup_s = 5.0;
  /// Mean delivered bitrate floor, kbps; <= 0 disables.
  double min_bitrate_kbps = 0.0;
  /// Worst-seed guard: max over seeds of rebuffer seconds; <= 0 disables.
  /// This is what the low-seed screens can miss and the full-seed rungs
  /// are for — a config that is frugal on average but stalls badly on one
  /// network realisation.
  double max_guard_rebuffer_s = 0.0;
};

/// One tuning cell: the device/network/governor context a config is tuned
/// for. `profile` is a device-registry name ("" = the legacy default
/// device); `net_label` names the network class in artifacts.
struct TuneContext {
  std::string name;  // "flagship/fair" — artifact key and round-tag stem
  std::string profile;
  std::string net_label = "fair";
  core::NetProfile net = core::NetProfile::kFair;
  std::string governor = "vafs";
  Constraints constraints;
};

/// The constraint-aware objective of one evaluated candidate.
struct Score {
  bool evaluated = false;
  bool feasible = false;
  /// Sum of relative constraint excesses; failed or capped-out sessions
  /// add a large penalty so broken configs sort after merely-stalling
  /// ones. 0 ⇔ feasible.
  double violation = 0.0;
  double energy_mj = 0.0;  // objective: mean total energy
  double rebuffer_ratio = 0.0;
  double drop_pct = 0.0;
  double startup_s = 0.0;
  double bitrate_kbps = 0.0;
  double guard_rebuffer_s = 0.0;  // max over seeds
  std::int64_t runs = 0;
  std::int64_t failures = 0;
};

/// The canonical strict total order on evaluated candidates: feasible
/// before infeasible, then violation ascending, then energy ascending,
/// then lexicographic candidate index. Every tuner decision (survivor
/// selection, refinement acceptance, the final winner) goes through this
/// comparison, so the result is unique — independent of evaluation order,
/// job count, shard size, or which of two equal-energy points a thread
/// happened to finish first (DESIGN.md §12).
bool better(const Score& a, const Candidate& ca, const Score& b, const Candidate& cb);

struct TunerOptions {
  /// Seeds the candidate sampler (TunerRng). The whole search trajectory
  /// is a pure function of this plus the evaluation results.
  std::uint64_t search_seed = 1;
  /// Evaluation seeds are eval_seed_base + j, j = 0..seeds-1; rungs share
  /// the prefix so a promoted candidate's cheap screen used a subset of
  /// the seeds its full evaluation uses.
  std::uint64_t eval_seed_base = 9000;

  /// Rung-0 population (sampled; exhaustive when the space is smaller).
  int initial_candidates = 16;
  /// Survivor divisor per rung: n_{r+1} = max(1, ceil(n_r / eta)).
  int eta = 4;
  /// Seeds per rung; the last entry is the full seed budget used by the
  /// refinement and sensitivity stages. Must be non-empty and ascending.
  std::vector<int> seed_schedule = {2, 4, 8};
  /// Compass refinement passes over ±1-step axis neighbours of the
  /// incumbent at full seeds; a pass that fails to strictly improve ends
  /// the stage.
  int refine_passes = 8;
  /// Emit the per-dimension landscape through the winner (full seeds).
  bool sensitivity = true;

  /// Base session config for every evaluation (media length, ABR, player
  /// ...); profile/net/governor are overridden per cell and the candidate
  /// knobs are applied on top.
  core::SessionConfig base;

  // Execution (must not affect results, only wall-clock).
  int jobs = 1;
  int batch = 1;
  std::size_t shard_size = 16;

  /// Directory for the tuner state file + per-round fleet manifests;
  /// empty disables search checkpointing. Created if missing.
  std::string checkpoint_dir;
  /// Resume from checkpoint_dir's state file (fresh start if none; hard
  /// error if it exists but is corrupt or for a different space/options).
  bool resume = false;

  /// Polled between rounds and per folded fleet shard; return false to
  /// stop cleanly with report.stopped = true after a final state write.
  std::function<bool()> keep_going;
};

/// The tuned result of one cell.
struct CellResult {
  TuneContext ctx;
  Candidate best;
  std::vector<double> best_values;  // one per ParamSpace dimension
  Score best_score;
  /// Sessions evaluated for this cell (candidates × seeds, summed).
  std::uint64_t sessions = 0;

  /// One sensitivity-sweep point: dimension d swept through the winner
  /// with every other knob held at the tuned value.
  struct SensitivityPoint {
    std::uint32_t dim = 0;
    std::uint32_t index = 0;
    double value = 0.0;
    Score score;
  };
  std::vector<SensitivityPoint> sensitivity;
};

struct TuneReport {
  std::vector<CellResult> cells;
  /// FNV fold of every round's tag, candidate list and score bits in
  /// execution order — the search trajectory as one number. Equal
  /// digests ⇒ the searches took identical paths.
  std::uint64_t trajectory_digest = 0;
  std::uint64_t rounds = 0;
  std::uint64_t rounds_replayed = 0;  // satisfied from the state file
  std::uint64_t sessions = 0;         // includes replayed rounds' sessions
  bool stopped = false;               // keep_going() ended the search early
  std::string error;

  bool ok() const { return error.empty(); }
  bool complete() const { return ok() && !stopped; }
};

/// One evaluation round: score these candidates on these seeds. The
/// candidate list is sorted lexicographically and duplicate-free; `tag`
/// is unique per round within a search and names the round's fleet
/// checkpoint subdirectory.
struct RoundRequest {
  const ParamSpace* space = nullptr;
  const TuneContext* ctx = nullptr;
  std::string tag;
  std::vector<Candidate> candidates;
  std::vector<std::uint64_t> seeds;
};

struct RoundResult {
  std::vector<Score> scores;  // parallel to RoundRequest::candidates
  bool stopped = false;
  std::string error;
};

/// Evaluation seam. The default (FleetEvaluator inside run_tuner) runs
/// real sessions through fleet::run_fleet; tests substitute synthetic
/// landscapes to probe search behaviour cheaply, and the fuzzer installs
/// a bounds-asserting evaluator.
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  virtual RoundResult evaluate(const RoundRequest& req) = 0;
};

/// Runs the full search over every cell. With `evaluator` null the real
/// fleet-backed evaluator is used (the only mode that checkpoints
/// in-flight rounds through fleet manifests; a custom evaluator still
/// gets completed-round replay from the tuner state file).
TuneReport run_tuner(const ParamSpace& space, const std::vector<TuneContext>& contexts,
                     const TunerOptions& opts, Evaluator* evaluator = nullptr);

/// The tuned_configs.json artifact: one entry per cell with the winning
/// knob values, its objective/constraint readings and feasibility.
/// Deterministic member order and number rendering — byte-comparable.
exp::Json tuned_configs_json(const ParamSpace& space, const std::vector<TuneContext>& contexts,
                             const TunerOptions& opts, const TuneReport& report);

/// The sensitivity-landscape CSV (one row per swept point per cell).
std::string sensitivity_csv(const ParamSpace& space, const TuneReport& report);

}  // namespace vafs::tune
