#include "video/buffer.h"

#include <algorithm>
#include <cassert>

namespace vafs::video {

void PlaybackBuffer::push(BufferedSegment segment) {
  assert(segment.segment_index == next_index_ && "segments must arrive in order");
  assert(segment.duration > sim::SimTime::zero());
  level_ += segment.duration;
  peak_ = std::max(peak_, level_);
  segments_.push_back(segment);
  ++next_index_;
}

void PlaybackBuffer::reset(std::size_t next_index) {
  segments_.clear();
  level_ = sim::SimTime::zero();
  front_consumed_ = sim::SimTime::zero();
  next_index_ = next_index;
}

sim::SimTime PlaybackBuffer::drain(sim::SimTime amount) {
  sim::SimTime drained;
  while (amount > sim::SimTime::zero() && !segments_.empty()) {
    auto& front = segments_.front();
    const sim::SimTime remaining = front.duration - front_consumed_;
    const sim::SimTime take = std::min(remaining, amount);
    front_consumed_ += take;
    level_ -= take;
    drained += take;
    amount -= take;
    if (front_consumed_ >= front.duration) {
      segments_.pop_front();
      front_consumed_ = sim::SimTime::zero();
    }
  }
  return drained;
}

}  // namespace vafs::video
