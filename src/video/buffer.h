// The playback buffer: downloaded-but-not-yet-played segments, measured in
// media seconds. ABR reads its level; the player drains it as the playhead
// advances; the VAFS governor derives download deadlines from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "simcore/time.h"

namespace vafs::video {

struct BufferedSegment {
  std::size_t segment_index = 0;
  std::size_t rep_index = 0;
  sim::SimTime duration;
  std::uint64_t bytes = 0;
};

class PlaybackBuffer {
 public:
  /// Adds a fully downloaded segment. Segments must arrive in playback
  /// order (asserted).
  void push(BufferedSegment segment);

  /// Consumes `amount` of media time from the front. Returns the amount
  /// actually consumed (less than requested if the buffer runs dry).
  sim::SimTime drain(sim::SimTime amount);

  /// Media seconds currently buffered.
  sim::SimTime level() const { return level_; }

  bool empty() const { return segments_.empty(); }
  std::size_t segment_count() const { return segments_.size(); }

  /// Front segment (the one the playhead is inside). Requires !empty().
  const BufferedSegment& front() const { return segments_.front(); }

  /// Index of the next segment to request (one past the newest buffered /
  /// consumed segment).
  std::size_t next_segment_index() const { return next_index_; }

  /// High-water mark of the buffer level over the object's lifetime.
  sim::SimTime peak_level() const { return peak_; }

  /// Discards all buffered content and repositions the expected segment
  /// sequence at `next_index` (used by seek). The peak statistic is kept.
  void reset(std::size_t next_index);

 private:
  std::deque<BufferedSegment> segments_;
  sim::SimTime level_;
  sim::SimTime front_consumed_;  // played portion of the front segment
  std::size_t next_index_ = 0;
  sim::SimTime peak_;
};

}  // namespace vafs::video
