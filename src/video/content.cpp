#include "video/content.h"

#include <cassert>
#include <cmath>

#include "simcore/rng.h"

namespace vafs::video {
namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ContentModel::ContentModel(std::uint64_t seed, ContentParams params, const Manifest* manifest)
    : seed_(seed), params_(params), manifest_(manifest) {
  assert(manifest_ != nullptr);
  assert(params_.gop_frames >= 2);
  assert(params_.idr_weight > 1.0 && params_.idr_weight < static_cast<double>(params_.gop_frames));
}

FrameInfo ContentModel::frame_miss(std::size_t rep, std::uint64_t frame_index) const {
  // Two lognormal draws per computation make this the single hottest pure
  // function in a session; the memo turns repeat lookups into one load.
  ContentStore& s = store();
  if (s.frames.size() <= rep) s.frames.resize(rep + 1);
  auto& per_rep = s.frames[rep];
  if (frame_index >= per_rep.size()) per_rep.resize(frame_index + 1);
  return per_rep[frame_index] = compute_frame(rep, frame_index);
}

FrameInfo ContentModel::compute_frame(std::size_t rep, std::uint64_t frame_index) const {
  const Representation& r = manifest_->representation(rep);

  const double mean_frame_bytes =
      static_cast<double>(r.bitrate_kbps) * 1000.0 / 8.0 / r.fps;

  // GOP weighting: IDR frames carry idr_weight× the average; P frames the
  // remainder, so the long-run mean stays at the nominal bitrate.
  const unsigned g = params_.gop_frames;
  const bool is_idr = frame_index % g == 0;
  const double w_idr = params_.idr_weight;
  const double w_p = (static_cast<double>(g) - w_idr) / static_cast<double>(g - 1);
  const double weight = is_idr ? w_idr : w_p;

  // Per-frame deterministic jitter: a private RNG keyed by
  // (seed, rep, frame) keeps the model random-access.
  sim::Rng rng(mix(mix(seed_, rep * 0x10001ULL + 7), frame_index));
  const double sigma = params_.size_sigma;
  const double size_jitter = rng.lognormal(-sigma * sigma / 2.0, sigma);

  FrameInfo info;
  info.is_idr = is_idr;
  info.bytes = static_cast<std::uint64_t>(
      std::max(64.0, mean_frame_bytes * weight * size_jitter));

  const double cs = params_.cycles_sigma;
  const double cycle_jitter = rng.lognormal(-cs * cs / 2.0, cs);
  const double bits = static_cast<double>(info.bytes) * 8.0;
  info.decode_cycles = (static_cast<double>(r.pixels()) * params_.cycles_per_pixel +
                        bits * params_.cycles_per_bit) *
                       cycle_jitter;
  return info;
}

const ContentStore::SegmentTotals& ContentModel::totals(std::size_t rep, std::size_t seg) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(rep) << 40) | seg;
  ContentStore& s = store();
  auto it = s.segments.find(key);
  if (it != s.segments.end()) return it->second;

  ContentStore::SegmentTotals t{0, 0.0};
  const std::uint64_t first = manifest_->first_frame_of_segment(rep, seg);
  const std::uint64_t count = manifest_->frames_in_segment(rep, seg);
  for (std::uint64_t f = 0; f < count; ++f) {
    const FrameInfo info = frame(rep, first + f);
    t.bytes += info.bytes;
    t.cycles += info.decode_cycles;
  }
  return s.segments.emplace(key, t).first->second;
}

std::uint64_t ContentModel::segment_bytes(std::size_t rep, std::size_t seg) const {
  return totals(rep, seg).bytes;
}

double ContentModel::segment_cycles(std::size_t rep, std::size_t seg) const {
  return totals(rep, seg).cycles;
}

}  // namespace vafs::video
