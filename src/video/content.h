// Content model: deterministic per-frame sizes and decode costs.
//
// Replaces real encoded videos (a data substitution documented in
// DESIGN.md). Frame sizes follow a GOP pattern — large IDR frames at GOP
// boundaries, smaller P frames between — with lognormal jitter; decode
// cost is affine in resolution and frame bits, the published shape for
// software decoders. Every value is a pure function of
// (seed, representation, frame index), so random access is cheap and two
// runs see byte-identical "content".
#pragma once

#include <cstdint>
#include <unordered_map>

#include "video/manifest.h"

namespace vafs::video {

struct FrameInfo {
  std::uint64_t bytes = 0;
  double decode_cycles = 0.0;
  bool is_idr = false;
};

struct ContentParams {
  /// Frames per GOP (one IDR each). 30 ≈ one per second at 30 fps.
  unsigned gop_frames = 30;
  /// IDR frame size relative to the segment-average frame size.
  double idr_weight = 4.0;
  /// Lognormal sigma of per-frame size jitter (mean preserved).
  double size_sigma = 0.25;

  /// Decode cost: cycles = pixels·cycles_per_pixel + bits·cycles_per_bit,
  /// jittered. Values put 720p30 software decode near 400 Mcycles/s and
  /// 1080p30 near 900 Mcycles/s — in line with mobile soft-decoder
  /// measurements.
  double cycles_per_pixel = 10.0;
  double cycles_per_bit = 45.0;
  double cycles_sigma = 0.12;
};

class ContentModel {
 public:
  /// `manifest` must outlive the model.
  ContentModel(std::uint64_t seed, ContentParams params, const Manifest* manifest);

  const Manifest& manifest() const { return *manifest_; }
  const ContentParams& params() const { return params_; }

  /// Frame `frame_index` (global, per-representation timeline) of
  /// representation `rep`.
  FrameInfo frame(std::size_t rep, std::uint64_t frame_index) const;

  /// Total bytes of segment `seg` in representation `rep` (sum of its
  /// frames; memoized).
  std::uint64_t segment_bytes(std::size_t rep, std::size_t seg) const;

  /// Total decode cycles of segment `seg` in representation `rep`
  /// (memoized).
  double segment_cycles(std::size_t rep, std::size_t seg) const;

 private:
  struct SegmentTotals {
    std::uint64_t bytes;
    double cycles;
  };
  const SegmentTotals& totals(std::size_t rep, std::size_t seg) const;

  std::uint64_t seed_;
  ContentParams params_;
  const Manifest* manifest_;
  mutable std::unordered_map<std::uint64_t, SegmentTotals> segment_cache_;
};

}  // namespace vafs::video
