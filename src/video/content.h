// Content model: deterministic per-frame sizes and decode costs.
//
// Replaces real encoded videos (a data substitution documented in
// DESIGN.md). Frame sizes follow a GOP pattern — large IDR frames at GOP
// boundaries, smaller P frames between — with lognormal jitter; decode
// cost is affine in resolution and frame bits, the published shape for
// software decoders. Every value is a pure function of
// (seed, representation, frame index), so random access is cheap and two
// runs see byte-identical "content".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "video/manifest.h"

namespace vafs::video {

struct FrameInfo {
  std::uint64_t bytes = 0;
  double decode_cycles = 0.0;
  bool is_idr = false;
};

/// Memo storage behind a ContentModel: the per-(rep, frame) table and the
/// per-segment totals. Owned by the model by default; a harness may hand
/// the same store to successive models constructed with identical
/// (seed, params, manifest shape) — every value is a pure function of
/// those inputs, so sharing the memo across sessions is exact and saves
/// re-synthesizing the same content under each governor of a grid.
struct ContentStore {
  struct SegmentTotals {
    std::uint64_t bytes;
    double cycles;
  };
  std::unordered_map<std::uint64_t, SegmentTotals> segments;
  /// bytes == 0 marks an empty entry (real frames are >= 64 bytes).
  std::vector<std::vector<FrameInfo>> frames;
};

struct ContentParams {
  /// Frames per GOP (one IDR each). 30 ≈ one per second at 30 fps.
  unsigned gop_frames = 30;
  /// IDR frame size relative to the segment-average frame size.
  double idr_weight = 4.0;
  /// Lognormal sigma of per-frame size jitter (mean preserved).
  double size_sigma = 0.25;

  /// Decode cost: cycles = pixels·cycles_per_pixel + bits·cycles_per_bit,
  /// jittered. Values put 720p30 software decode near 400 Mcycles/s and
  /// 1080p30 near 900 Mcycles/s — in line with mobile soft-decoder
  /// measurements.
  double cycles_per_pixel = 10.0;
  double cycles_per_bit = 45.0;
  double cycles_sigma = 0.12;
};

class ContentModel {
 public:
  /// `manifest` must outlive the model.
  ContentModel(std::uint64_t seed, ContentParams params, const Manifest* manifest);

  const Manifest& manifest() const { return *manifest_; }
  const ContentParams& params() const { return params_; }

  /// Redirects memoization to `store` (not owned; must outlive the model).
  /// The store must have been filled — if at all — by a model with the
  /// same (seed, params, manifest shape); passing nullptr reverts to the
  /// private store.
  void use_store(ContentStore* store) { shared_ = store; }

  /// Frame `frame_index` (global, per-representation timeline) of
  /// representation `rep`. Memoized: the value is a pure function of
  /// (seed, rep, frame), and the pipeline asks for each frame several
  /// times (download sizing, decode scheduling, segment totals) — hits
  /// outnumber misses ~5:1 in a session, so the hit path stays inline.
  FrameInfo frame(std::size_t rep, std::uint64_t frame_index) const {
    const ContentStore& s = store();
    if (rep < s.frames.size()) {
      const auto& per_rep = s.frames[rep];
      if (frame_index < per_rep.size() && per_rep[frame_index].bytes != 0) {
        return per_rep[frame_index];
      }
    }
    return frame_miss(rep, frame_index);
  }

  /// Total bytes of segment `seg` in representation `rep` (sum of its
  /// frames; memoized).
  std::uint64_t segment_bytes(std::size_t rep, std::size_t seg) const;

  /// Total decode cycles of segment `seg` in representation `rep`
  /// (memoized).
  double segment_cycles(std::size_t rep, std::size_t seg) const;

 private:
  const ContentStore::SegmentTotals& totals(std::size_t rep, std::size_t seg) const;
  FrameInfo frame_miss(std::size_t rep, std::uint64_t frame_index) const;
  FrameInfo compute_frame(std::size_t rep, std::uint64_t frame_index) const;

  /// Active memo: the shared store if attached, else the private one.
  /// Resolved per access (not cached in a pointer) so the implicitly
  /// generated copy/move operations stay correct.
  ContentStore& store() const { return shared_ != nullptr ? *shared_ : own_store_; }

  std::uint64_t seed_;
  ContentParams params_;
  const Manifest* manifest_;
  mutable ContentStore own_store_;
  ContentStore* shared_ = nullptr;  // not owned
};

}  // namespace vafs::video
