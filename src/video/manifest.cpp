#include "video/manifest.h"

#include <cassert>
#include <cmath>

namespace vafs::video {

Manifest::Manifest(std::string name, sim::SimTime segment_duration, sim::SimTime total_duration,
                   std::vector<Representation> representations)
    : name_(std::move(name)),
      segment_duration_(segment_duration),
      total_duration_(total_duration),
      reps_(std::move(representations)) {
  assert(segment_duration_ > sim::SimTime::zero());
  assert(total_duration_ > sim::SimTime::zero());
  assert(!reps_.empty());
  for (std::size_t i = 1; i < reps_.size(); ++i) {
    assert(reps_[i].bitrate_kbps >= reps_[i - 1].bitrate_kbps &&
           "representations must be ordered by bitrate");
  }
}

std::size_t Manifest::segment_count() const {
  const auto total = total_duration_.as_micros();
  const auto seg = segment_duration_.as_micros();
  return static_cast<std::size_t>((total + seg - 1) / seg);
}

sim::SimTime Manifest::segment_duration(std::size_t idx) const {
  assert(idx < segment_count());
  const sim::SimTime start = segment_duration_ * static_cast<std::int64_t>(idx);
  const sim::SimTime end = start + segment_duration_;
  return end <= total_duration_ ? segment_duration_ : total_duration_ - start;
}

std::uint64_t Manifest::frames_in_segment(std::size_t rep, std::size_t idx) const {
  const double frames = segment_duration(idx).as_seconds_f() * reps_[rep].fps;
  return static_cast<std::uint64_t>(std::llround(frames));
}

std::uint64_t Manifest::first_frame_of_segment(std::size_t rep, std::size_t idx) const {
  const double frames =
      segment_duration_.as_seconds_f() * reps_[rep].fps * static_cast<double>(idx);
  return static_cast<std::uint64_t>(std::llround(frames));
}

std::size_t Manifest::rep_index_for_bitrate(double kbps) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    if (static_cast<double>(reps_[i].bitrate_kbps) <= kbps) best = i;
  }
  return best;
}

Manifest Manifest::typical_vod(std::string name, sim::SimTime total_duration,
                               sim::SimTime segment_duration) {
  return Manifest(std::move(name), segment_duration, total_duration,
                  {
                      {"360p", 800, 640, 360, 30.0},
                      {"480p", 1200, 854, 480, 30.0},
                      {"720p", 2500, 1280, 720, 30.0},
                      {"1080p", 5000, 1920, 1080, 30.0},
                  });
}

}  // namespace vafs::video
