// DASH/HLS-style stream description: a bitrate ladder of representations
// over a fixed segment grid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.h"

namespace vafs::video {

/// One encoding of the content (a rung of the bitrate ladder).
struct Representation {
  std::string id;
  std::uint32_t bitrate_kbps = 0;
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  double fps = 30.0;

  std::uint32_t pixels() const {
    return static_cast<std::uint32_t>(width) * static_cast<std::uint32_t>(height);
  }
};

class Manifest {
 public:
  Manifest(std::string name, sim::SimTime segment_duration, sim::SimTime total_duration,
           std::vector<Representation> representations);

  const std::string& name() const { return name_; }
  sim::SimTime nominal_segment_duration() const { return segment_duration_; }
  sim::SimTime total_duration() const { return total_duration_; }

  std::size_t segment_count() const;
  /// Actual duration of segment `idx` (the last one may be shorter).
  sim::SimTime segment_duration(std::size_t idx) const;
  /// Number of frames in segment `idx` for representation `rep`.
  std::uint64_t frames_in_segment(std::size_t rep, std::size_t idx) const;
  /// Index of the first frame of segment `idx`.
  std::uint64_t first_frame_of_segment(std::size_t rep, std::size_t idx) const;

  std::size_t representation_count() const { return reps_.size(); }
  const Representation& representation(std::size_t i) const { return reps_[i]; }
  const std::vector<Representation>& representations() const { return reps_; }

  /// Index of the representation whose bitrate is the highest not
  /// exceeding `kbps` (the ABR primitive); 0 if all exceed it.
  std::size_t rep_index_for_bitrate(double kbps) const;

  /// A typical VoD ladder: 360p/0.8M, 480p/1.2M, 720p/2.5M, 1080p/5M at
  /// 30 fps, 4-second segments.
  static Manifest typical_vod(std::string name, sim::SimTime total_duration,
                              sim::SimTime segment_duration = sim::SimTime::seconds(4));

 private:
  std::string name_;
  sim::SimTime segment_duration_;
  sim::SimTime total_duration_;
  std::vector<Representation> reps_;
};

}  // namespace vafs::video
