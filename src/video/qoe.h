// Quality-of-experience accounting for a streaming session. The evaluation
// (T2/F3) uses these to show that energy savings do not come out of QoE.
#pragma once

#include <cstdint>

#include "simcore/time.h"

namespace vafs::video {

struct QoeStats {
  sim::SimTime startup_delay;      // request → first frame presented
  sim::SimTime rebuffer_time;      // total stalled time after startup
  std::uint64_t rebuffer_events = 0;

  std::uint64_t frames_presented = 0;
  std::uint64_t frames_dropped = 0;    // decode missed its vsync deadline
  std::uint64_t deadline_misses = 0;   // late decodes (dropped or shown late)

  double mean_bitrate_kbps = 0.0;      // time-weighted played bitrate
  std::uint64_t quality_switches = 0;

  std::uint64_t seek_count = 0;
  sim::SimTime seek_time;  // total seek-to-resume latency

  /// Download-resilience accounting: extra attempts behind delivered
  /// segments, and fetches the downloader gave up on (each re-requested
  /// by the player until the segment eventually lands).
  std::uint64_t fetch_retries = 0;
  std::uint64_t fetch_failures = 0;

  double drop_ratio() const {
    const auto total = frames_presented + frames_dropped;
    return total > 0 ? static_cast<double>(frames_dropped) / static_cast<double>(total) : 0.0;
  }

  /// Rebuffer time as a fraction of (playback + rebuffer) time.
  double rebuffer_ratio(sim::SimTime played) const {
    const double denom = (played + rebuffer_time).as_seconds_f();
    return denom > 0 ? rebuffer_time.as_seconds_f() / denom : 0.0;
  }
};

}  // namespace vafs::video
