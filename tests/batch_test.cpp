// Tests for the lockstep batch path (core::SessionBatch and its plumbing
// through exp::run_grid / fleet::run_fleet), organized around its one
// correctness claim: batch == serial, bitwise, per session. Lanes share
// nothing — each owns its Simulator / Rng / sysfs tree — so any lane
// interleaving, any batch width, any lockstep quantum must produce the
// exact SessionResult (and trace digest) the one-session-at-a-time path
// produces. The differential tests pin that across batch sizes, job
// counts, ragged chunks, staggered session lengths, fault plans firing
// mid-batch, and kill/resume cycles; the API tests cover the SessionBatch
// surface directly (admit/run/finish lifecycle, quantum invariance,
// failure isolation and serial-exact error messages).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/session_batch.h"
#include "exp/aggregate.h"
#include "exp/grid.h"
#include "exp/runner.h"
#include "fault/plan.h"
#include "fleet/fleet_runner.h"
#include "obs/trace.h"

namespace vafs {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("vafs_batch_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

core::SessionConfig small_config() {
  core::SessionConfig config;
  config.media_duration = sim::SimTime::seconds(20);
  config.net = core::NetProfile::kFair;
  config.fixed_rep = 2;
  return config;
}

/// Bitwise equality across every scalar field the aggregates and tables
/// consume, plus the digest fields — catches any nondeterminism, not just
/// "close enough" drift.
void expect_identical(const core::SessionResult& a, const core::SessionResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.energy.cpu_mj, b.energy.cpu_mj);
  EXPECT_EQ(a.energy.radio_mj, b.energy.radio_mj);
  EXPECT_EQ(a.energy.display_mj, b.energy.display_mj);
  EXPECT_EQ(a.qoe.startup_delay, b.qoe.startup_delay);
  EXPECT_EQ(a.qoe.rebuffer_events, b.qoe.rebuffer_events);
  EXPECT_EQ(a.qoe.rebuffer_time, b.qoe.rebuffer_time);
  EXPECT_EQ(a.qoe.frames_presented, b.qoe.frames_presented);
  EXPECT_EQ(a.qoe.frames_dropped, b.qoe.frames_dropped);
  EXPECT_EQ(a.qoe.deadline_misses, b.qoe.deadline_misses);
  EXPECT_EQ(a.qoe.quality_switches, b.qoe.quality_switches);
  EXPECT_EQ(a.qoe.mean_bitrate_kbps, b.qoe.mean_bitrate_kbps);
  EXPECT_EQ(a.qoe.fetch_retries, b.qoe.fetch_retries);
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.played, b.played);
  EXPECT_EQ(a.live_latency, b.live_latency);
  EXPECT_EQ(a.freq_transitions, b.freq_transitions);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.radio_promotions, b.radio_promotions);
  EXPECT_EQ(a.vafs_decode_mape, b.vafs_decode_mape);
  EXPECT_EQ(a.vafs_plans, b.vafs_plans);
  EXPECT_EQ(a.vafs_setspeed_writes, b.vafs_setspeed_writes);
  EXPECT_EQ(a.fault_windows, b.fault_windows);
  EXPECT_EQ(a.vafs_fallback_time, b.vafs_fallback_time);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.trace_events, b.trace_events);
  ASSERT_EQ(a.residency.size(), b.residency.size());
  for (std::size_t i = 0; i < a.residency.size(); ++i) {
    EXPECT_EQ(a.residency[i].first, b.residency[i].first);
    EXPECT_EQ(a.residency[i].second, b.residency[i].second);
  }
}

/// Full-grid bitwise comparison: per-run results (digests included),
/// failure lists (message-exact) and Welford aggregate state bits.
void expect_grids_identical(const exp::ResultSet& a, const exp::ResultSet& b) {
  ASSERT_EQ(a.all().size(), b.all().size());
  for (std::size_t s = 0; s < a.all().size(); ++s) {
    const exp::ScenarioResult& sa = a.all()[s];
    const exp::ScenarioResult& sb = b.all()[s];
    EXPECT_EQ(sa.spec.id, sb.spec.id);
    ASSERT_EQ(sa.runs.size(), sb.runs.size());
    for (std::size_t r = 0; r < sa.runs.size(); ++r) expect_identical(sa.runs[r], sb.runs[r]);
    ASSERT_EQ(sa.failures.size(), sb.failures.size());
    for (std::size_t f = 0; f < sa.failures.size(); ++f) {
      EXPECT_EQ(sa.failures[f].seed_index, sb.failures[f].seed_index);
      EXPECT_EQ(sa.failures[f].seed, sb.failures[f].seed);
      EXPECT_EQ(sa.failures[f].message, sb.failures[f].message);
    }
    EXPECT_EQ(sa.agg.runs, sb.agg.runs);
    EXPECT_EQ(sa.agg.all_finished, sb.agg.all_finished);
    for (const auto& m : exp::Aggregate::metrics()) {
      const sim::OnlineStats::State ma = (sa.agg.*m.member).state();
      const sim::OnlineStats::State mb = (sb.agg.*m.member).state();
      EXPECT_EQ(ma.n, mb.n) << m.name;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(ma.mean), std::bit_cast<std::uint64_t>(mb.mean))
          << m.name;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(ma.m2), std::bit_cast<std::uint64_t>(mb.m2))
          << m.name;
    }
  }
}

exp::ResultSet run_with(const std::vector<exp::ScenarioSpec>& scenarios,
                        const std::vector<std::uint64_t>& seeds, int jobs, int batch) {
  exp::RunOptions opts;
  opts.jobs = jobs;
  opts.batch = batch;
  opts.seeds = seeds;
  opts.trace = true;  // digests in every result: one reordered RNG draw shows up
  return exp::run_grid(scenarios, opts);
}

// ---------------------------------------------------------- differential

TEST(BatchDifferential, MatchesSerialAcrossBatchSizesAndJobs) {
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "schedutil", "vafs"}).reps({{0, "360p"}, {2, "720p"}});
  const auto scenarios = grid.scenarios();
  const std::vector<std::uint64_t> seeds = {101, 202};

  const exp::ResultSet serial = run_with(scenarios, seeds, 1, 1);
  ASSERT_GT(serial.all().front().run0().trace_events, 0u);

  for (const int batch : {1, 4, 32}) {
    for (const int jobs : {1, 4}) {
      SCOPED_TRACE("batch=" + std::to_string(batch) + " jobs=" + std::to_string(jobs));
      expect_grids_identical(serial, run_with(scenarios, seeds, jobs, batch));
    }
  }
}

TEST(BatchDifferential, RaggedChunksCoverEveryTask) {
  // 2 scenarios x 5 seeds = 10 tasks: batch 4 gives chunks of 4, 4, 2 and
  // batch 7 gives 7, 3 — the last pack is ragged either way, and a batch
  // wider than the whole grid degenerates to one pack. Every cell must
  // land in its slot regardless.
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  const auto scenarios = grid.scenarios();
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};

  const exp::ResultSet serial = run_with(scenarios, seeds, 1, 1);
  for (const int batch : {3, 4, 7, 16}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    expect_grids_identical(serial, run_with(scenarios, seeds, 1, batch));
  }
}

TEST(BatchDifferential, StaggeredSessionEndsRetireLanesIndependently) {
  // Lanes in one pack end at very different sim times (8 s through 40 s
  // of media): short lanes retire and leave the wheel while long ones run
  // on. One pack covers the whole grid, so every retirement happens
  // mid-batch.
  std::vector<std::pair<std::string, exp::ExperimentGrid::Mutator>> durations;
  for (const int secs : {8, 20, 40}) {
    durations.emplace_back(std::to_string(secs) + "s", [secs](core::SessionConfig& c) {
      c.media_duration = sim::SimTime::seconds(secs);
    });
  }
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"}).axis("dur", std::move(durations));
  const auto scenarios = grid.scenarios();
  const std::vector<std::uint64_t> seeds = {101, 202};

  const exp::ResultSet serial = run_with(scenarios, seeds, 1, 1);
  // Durations really differ (wall time tracks media length).
  const sim::SimTime w_short = serial.at({{"governor", "ondemand"}, {"dur", "8s"}}).run0().wall;
  const sim::SimTime w_long = serial.at({{"governor", "ondemand"}, {"dur", "40s"}}).run0().wall;
  ASSERT_LT(w_short, w_long);

  expect_grids_identical(serial, run_with(scenarios, seeds, 1, 64));
  expect_grids_identical(serial, run_with(scenarios, seeds, 4, 4));
}

TEST(BatchDifferential, FaultWindowsMidBatchMatchSerial) {
  // The harsh fault plan (bandwidth collapses, thermal caps, fetch
  // failures and hangs) fires while other lanes are interleaved on the
  // same wheel; retries and backoff jitter draws must be untouched.
  core::SessionConfig base = small_config();
  base.media_duration = sim::SimTime::seconds(30);
  base.fault = fault::FaultPlanConfig::harsh();
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;
  base.vafs.watchdog.enabled = true;
  exp::ExperimentGrid grid(base);
  grid.governors({"ondemand", "vafs"});
  const auto scenarios = grid.scenarios();
  const std::vector<std::uint64_t> seeds = {101, 202, 303};

  const exp::ResultSet serial = run_with(scenarios, seeds, 1, 1);
  // The plan actually fired somewhere.
  double windows = 0.0;
  for (const auto& sr : serial.all()) {
    for (const auto& run : sr.runs) windows += static_cast<double>(run.fault_windows);
  }
  ASSERT_GT(windows, 0.0);

  for (const int batch : {2, 6}) {
    for (const int jobs : {1, 4}) {
      SCOPED_TRACE("batch=" + std::to_string(batch) + " jobs=" + std::to_string(jobs));
      expect_grids_identical(serial, run_with(scenarios, seeds, jobs, batch));
    }
  }
}

TEST(BatchDifferential, RngKeyingUnchangedByBatchBoundaries) {
  // Fetch fates and retry backoff jitter are keyed per (fetch, attempt),
  // not drawn from any shared stream — so sliding the pack boundary
  // across a retrying session (every batch width cuts the 8-task grid
  // differently) must not move a single draw. The digests would show it.
  core::SessionConfig base = small_config();
  base.fault.fetch_failure_prob = 0.15;
  base.fault.fetch_hang_prob = 0.05;
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;
  exp::ExperimentGrid grid(base);
  grid.governors({"ondemand", "vafs"});
  const auto scenarios = grid.scenarios();
  const std::vector<std::uint64_t> seeds = {11, 22, 33, 44};

  const exp::ResultSet serial = run_with(scenarios, seeds, 1, 1);
  double retries = 0.0;
  for (const auto& sr : serial.all()) retries += sr.agg.fetch_retries.sum();
  ASSERT_GT(retries, 0.0);

  for (const int batch : {2, 3, 5, 8}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    expect_grids_identical(serial, run_with(scenarios, seeds, 1, batch));
  }
}

TEST(BatchDifferential, FailureMessagesMatchSerialExactly) {
  // One scenario that throws at bring-up (kTrace with no trace) packed
  // between two good ones: the bad cell's error string must be
  // byte-identical to the serial path's, and the batchmates must come out
  // bitwise untouched.
  std::vector<exp::ScenarioSpec> scenarios(3);
  scenarios[0].id = "good-a";
  scenarios[0].config = small_config();
  scenarios[1].id = "bad";
  scenarios[1].config = small_config();
  scenarios[1].config.net = core::NetProfile::kTrace;
  scenarios[2].id = "good-b";
  scenarios[2].config = small_config();
  scenarios[2].config.governor = "vafs";
  const std::vector<std::uint64_t> seeds = {101, 202};

  const exp::ResultSet serial = run_with(scenarios, seeds, 1, 1);
  ASSERT_EQ(serial.all()[1].failures.size(), 2u);
  EXPECT_NE(serial.all()[1].failures[0].message.find("scenario 'bad' seed 101"),
            std::string::npos);

  for (const int batch : {2, 6}) {
    for (const int jobs : {1, 4}) {
      SCOPED_TRACE("batch=" + std::to_string(batch) + " jobs=" + std::to_string(jobs));
      expect_grids_identical(serial, run_with(scenarios, seeds, jobs, batch));
    }
  }
}

// ------------------------------------------------------ SessionBatch API

TEST(SessionBatchApi, AdmitRunFinishMatchesRunSession) {
  const char* governors[] = {"ondemand", "schedutil", "vafs"};

  std::vector<core::SessionResult> serial;
  for (const char* governor : governors) {
    core::SessionConfig config = small_config();
    config.governor = governor;
    obs::Tracer tracer{obs::Tracer::Config{0}};
    core::SessionHooks hooks;
    hooks.tracer = &tracer;
    serial.push_back(core::run_session(config, hooks));
  }

  std::vector<core::SessionConfig> configs;
  std::deque<obs::Tracer> tracers;  // Tracer is pinned: deque, not vector
  for (const char* governor : governors) {
    configs.push_back(small_config());
    configs.back().governor = governor;
    tracers.emplace_back(obs::Tracer::Config{0});
  }
  core::SessionBatch batch(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    core::SessionHooks hooks;
    hooks.tracer = &tracers[i];
    EXPECT_EQ(batch.admit(configs[i], hooks, nullptr), i);
  }
  EXPECT_EQ(batch.size(), 3u);
  batch.run();
  batch.run();  // idempotent: all lanes already retired
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(serial[i], batch.finish(i));
  }
}

TEST(SessionBatchApi, QuantumDoesNotChangeResults) {
  // Strict per-event lockstep (quantum 0), the default, and a quantum so
  // large each lane runs to retirement in one burst: identical bits. The
  // interleaving is unobservable because lanes share nothing.
  const std::vector<sim::SimTime> quanta = {sim::SimTime{}, sim::SimTime::millis(250),
                                            sim::SimTime::seconds(1000000)};
  std::vector<std::vector<core::SessionResult>> per_quantum;
  for (const sim::SimTime quantum : quanta) {
    std::vector<core::SessionConfig> configs;
    for (const char* governor : {"ondemand", "vafs"}) {
      configs.push_back(small_config());
      configs.back().governor = governor;
    }
    std::deque<obs::Tracer> tracers;
    tracers.emplace_back(obs::Tracer::Config{0});
    tracers.emplace_back(obs::Tracer::Config{0});
    core::SessionBatch batch(configs.size(), quantum);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      core::SessionHooks hooks;
      hooks.tracer = &tracers[i];
      batch.admit(configs[i], hooks, nullptr);
    }
    batch.run();
    std::vector<core::SessionResult> results;
    for (std::size_t i = 0; i < configs.size(); ++i) results.push_back(batch.finish(i));
    per_quantum.push_back(std::move(results));
  }
  for (std::size_t q = 1; q < per_quantum.size(); ++q) {
    for (std::size_t i = 0; i < per_quantum[0].size(); ++i) {
      SCOPED_TRACE("quantum index " + std::to_string(q));
      expect_identical(per_quantum[0][i], per_quantum[q][i]);
    }
  }
}

TEST(SessionBatchApi, AdmitThrowLeavesBatchmatesUntouched) {
  core::SessionConfig good = small_config();
  const core::SessionResult solo = core::run_session(good);

  core::SessionBatch batch;
  EXPECT_EQ(batch.admit(good, {}, nullptr), 0u);

  core::SessionConfig bad = small_config();
  bad.net = core::NetProfile::kTrace;  // trace left empty -> SessionError
  EXPECT_THROW(batch.admit(bad, {}, nullptr), core::SessionError);

  // The failed admit consumed no lane; a later admit still works and both
  // survivors run to the exact serial result.
  EXPECT_EQ(batch.admit(good, {}, nullptr), 1u);
  EXPECT_EQ(batch.size(), 2u);
  batch.run();
  expect_identical(solo, batch.finish(0));
  expect_identical(solo, batch.finish(1));
}

// ----------------------------------------------------------- fleet batch

fleet::FleetOptions fleet_opts(const std::vector<std::uint64_t>& seeds, int jobs, int batch) {
  fleet::FleetOptions opts;
  opts.jobs = jobs;
  opts.batch = batch;
  opts.seeds = seeds;
  opts.shard_size = 3;
  return opts;
}

TEST(FleetBatch, DigestChainInvariantAcrossBatchAndJobs) {
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  const auto scenarios = grid.scenarios();
  const std::vector<std::uint64_t> seeds = {101, 202, 303, 404, 505};

  const fleet::FleetResult serial = fleet::run_fleet(scenarios, fleet_opts(seeds, 1, 1));
  ASSERT_TRUE(serial.ok()) << serial.error;
  ASSERT_NE(serial.digest_chain, 0u);

  for (const int batch : {2, 7, 32}) {
    for (const int jobs : {1, 4}) {
      SCOPED_TRACE("batch=" + std::to_string(batch) + " jobs=" + std::to_string(jobs));
      const fleet::FleetResult result = fleet::run_fleet(scenarios, fleet_opts(seeds, jobs, batch));
      ASSERT_TRUE(result.ok()) << result.error;
      EXPECT_TRUE(result.complete());
      EXPECT_EQ(result.digest_chain, serial.digest_chain);
      ASSERT_EQ(result.scenarios.size(), serial.scenarios.size());
      for (std::size_t s = 0; s < serial.scenarios.size(); ++s) {
        for (const auto& m : exp::Aggregate::metrics()) {
          const sim::OnlineStats::State ma = (serial.scenarios[s].agg.*m.member).state();
          const sim::OnlineStats::State mb = (result.scenarios[s].agg.*m.member).state();
          EXPECT_EQ(std::bit_cast<std::uint64_t>(ma.mean), std::bit_cast<std::uint64_t>(mb.mean))
              << m.name;
          EXPECT_EQ(std::bit_cast<std::uint64_t>(ma.m2), std::bit_cast<std::uint64_t>(mb.m2))
              << m.name;
        }
      }
    }
  }
}

TEST(FleetBatch, KillAndResumeInBatchModeMatchesSerialSpool) {
  // Serial uninterrupted run is the byte-level reference; a batch-mode run
  // killed mid-grid and resumed at a *different* batch width must converge
  // to the same digest chain and the same spool bytes. Batch width is a
  // per-worker execution detail — nothing about it may leak into the
  // checkpoint or the row stream.
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  const auto scenarios = grid.scenarios();
  const std::vector<std::uint64_t> seeds = {101, 202, 303, 404, 505};

  const auto checkpointed = [&](const fs::path& dir, int batch) {
    fleet::FleetOptions opts = fleet_opts(seeds, 4, batch);
    opts.shard_size = 2;
    opts.checkpoint_dir = dir.string();
    opts.checkpoint_every_shards = 1;
    opts.spool.format = fleet::SpoolFormat::kCsv;
    return opts;
  };

  const fs::path ref_dir = fresh_dir("batch_resume_ref");
  const fleet::FleetResult whole = fleet::run_fleet(scenarios, checkpointed(ref_dir, 1));
  ASSERT_TRUE(whole.complete()) << whole.error;
  const std::string ref_spool = slurp(ref_dir / "spool.csv");
  ASSERT_FALSE(ref_spool.empty());

  const fs::path dir = fresh_dir("batch_resume_kill");
  fleet::FleetOptions killed_opts = checkpointed(dir, 7);
  killed_opts.on_progress = [](std::uint64_t done, std::uint64_t) { return done < 2; };
  const fleet::FleetResult killed = fleet::run_fleet(scenarios, killed_opts);
  ASSERT_TRUE(killed.ok()) << killed.error;
  ASSERT_TRUE(killed.stopped);

  fleet::FleetOptions resume_opts = checkpointed(dir, 32);
  resume_opts.resume = true;
  const fleet::FleetResult resumed = fleet::run_fleet(scenarios, resume_opts);
  ASSERT_TRUE(resumed.complete()) << resumed.error;
  EXPECT_EQ(resumed.digest_chain, whole.digest_chain);
  EXPECT_GT(resumed.sessions_resumed, 0u);
  EXPECT_EQ(slurp(dir / "spool.csv"), ref_spool);
}

}  // namespace
}  // namespace vafs
