// Tests for the paper's contribution: the cycle-demand predictors and the
// VAFS userspace controller (attach/actuation through sysfs, cold start,
// demand planning, download handling, drop-recovery boost).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string_view>

#include "core/predictor.h"
#include "core/vafs_controller.h"
#include "cpu/cpufreq_policy.h"
#include "cpu/cpufreq_sysfs.h"
#include "governors/registry.h"
#include "net/downloader.h"
#include "simcore/simulator.h"
#include "stream/player.h"
#include "video/content.h"

namespace vafs::core {
namespace {

// --------------------------------------------------------------- Predictor

TEST(Predictor, EwmaConvergesToConstant) {
  CycleDemandPredictor p({PredictorKind::kEwma, 8, 0.5, 0.9});
  for (int i = 0; i < 20; ++i) p.observe(100.0);
  EXPECT_NEAR(p.predict(), 100.0, 1e-9);
}

TEST(Predictor, EwmaWeightsRecentSamples) {
  CycleDemandPredictor p({PredictorKind::kEwma, 8, 0.5, 0.9});
  p.observe(100.0);
  p.observe(200.0);
  EXPECT_DOUBLE_EQ(p.predict(), 150.0);  // 0.5*200 + 0.5*100
}

TEST(Predictor, WindowMaxTracksPeakAndForgets) {
  CycleDemandPredictor p({PredictorKind::kWindowMax, 3, 0.25, 0.9});
  p.observe(10);
  p.observe(50);
  p.observe(20);
  EXPECT_EQ(p.predict(), 50.0);
  p.observe(20);  // 50 still in window (window=3: 50,20,20)... no: 20,20 and this
  p.observe(20);  // now window = {20, 20, 20}
  p.observe(20);
  EXPECT_EQ(p.predict(), 20.0);
}

TEST(Predictor, QuantileIsRobustToOutliers) {
  CycleDemandPredictor p({PredictorKind::kQuantile, 10, 0.25, 0.90});
  for (int i = 0; i < 9; ++i) p.observe(100.0);
  p.observe(10'000.0);  // single spike
  const double predicted = p.predict();
  EXPECT_GE(predicted, 100.0);
  EXPECT_LT(predicted, 10'000.0);  // p90-of-10 via rounding lands below the spike

  CycleDemandPredictor pmax({PredictorKind::kWindowMax, 10, 0.25, 0.90});
  for (int i = 0; i < 9; ++i) pmax.observe(100.0);
  pmax.observe(10'000.0);
  EXPECT_EQ(pmax.predict(), 10'000.0);  // max pays the spike
}

TEST(Predictor, NoHistoryPredictsZero) {
  CycleDemandPredictor p;
  EXPECT_EQ(p.predict(), 0.0);
  EXPECT_EQ(p.observations(), 0u);
}

TEST(Predictor, MapeTracksAccuracy) {
  CycleDemandPredictor p({PredictorKind::kEwma, 8, 1.0, 0.9});  // alpha=1: predict last
  p.observe(100);
  p.observe(110);  // APE = |100-110|/110
  p.observe(110);  // APE = 0
  EXPECT_EQ(p.ape_stats().count(), 2u);
  EXPECT_NEAR(p.mape(), (10.0 / 110.0 + 0.0) / 2.0, 1e-12);
}

TEST(Predictor, KindNames) {
  EXPECT_STREQ(predictor_kind_name(PredictorKind::kEwma), "ewma");
  EXPECT_STREQ(predictor_kind_name(PredictorKind::kWindowMax), "window-max");
  EXPECT_STREQ(predictor_kind_name(PredictorKind::kQuantile), "quantile");
}

// ---------------------------------------------------------- VafsController

/// The full device stack as a plain value so tests can build fresh worlds
/// at will (gtest fixtures cannot be instantiated directly).
struct VafsWorld {
  VafsWorld()
      : cpu_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()),
        radio_(sim_, net::RadioParams::lte()),
        bw_(20.0),
        manifest_(video::Manifest::typical_vod("t", sim::SimTime::seconds(24))),
        content_(11, video::ContentParams{}, &manifest_) {
    governors::register_standard(registry_);
    policy_ = std::make_unique<cpu::CpufreqPolicy>(sim_, cpu_, registry_, "ondemand");
    binder_ = std::make_unique<cpu::CpufreqSysfs>(tree_, *policy_, 0);
    downloader_ = std::make_unique<net::Downloader>(sim_, radio_, bw_, &cpu_);
  }

  VafsController& make_controller(std::size_t rep, VafsConfig config = {}) {
    player_ = std::make_unique<stream::Player>(sim_, cpu_, *downloader_, content_,
                                               std::make_unique<stream::FixedAbr>(rep));
    controller_ = std::make_unique<VafsController>(sim_, tree_, binder_->dir(), *player_,
                                                   config);
    return *controller_;
  }

  bool run_session_to_finish() {
    bool done = false;
    player_->start([&] { done = true; });
    while (!done && sim_.now() < sim::SimTime::seconds(300)) {
      if (!sim_.step()) break;
    }
    return done;
  }

  sim::Simulator sim_;
  cpu::CpuModel cpu_;
  cpu::GovernorRegistry registry_;
  sysfs::Tree tree_;
  net::RadioModel radio_;
  net::ConstantBandwidth bw_;
  video::Manifest manifest_;
  video::ContentModel content_;
  std::unique_ptr<cpu::CpufreqPolicy> policy_;
  std::unique_ptr<cpu::CpufreqSysfs> binder_;
  std::unique_ptr<net::Downloader> downloader_;
  std::unique_ptr<stream::Player> player_;
  std::unique_ptr<VafsController> controller_;
};

class VafsTest : public ::testing::Test, protected VafsWorld {};

TEST_F(VafsTest, AttachSwitchesToUserspaceViaSysfs) {
  VafsController& ctl = make_controller(2);
  ASSERT_TRUE(ctl.attach());
  EXPECT_EQ(policy_->governor_name(), "userspace");
  EXPECT_GT(ctl.setspeed_writes(), 0u);
  EXPECT_GT(ctl.last_planned_khz(), 0u);
}

TEST_F(VafsTest, AttachFailsWithoutPolicyDirectory) {
  player_ = std::make_unique<stream::Player>(sim_, cpu_, *downloader_, content_,
                                             std::make_unique<stream::FixedAbr>(0));
  VafsController ctl(sim_, tree_, "devices/no/such/policy", *player_);
  EXPECT_FALSE(ctl.attach());
}

TEST_F(VafsTest, ColdStartPlansConservativeMid) {
  VafsConfig config;
  config.cold_start_fraction = 0.6;
  VafsController& ctl = make_controller(2, config);
  ASSERT_TRUE(ctl.attach());
  // 0.6 * 2.1 GHz = 1.26 GHz -> snaps up to 1.5 GHz.
  EXPECT_EQ(ctl.last_planned_khz(), 1'500'000u);
  EXPECT_EQ(policy_->cur_khz(), 1'500'000u);
}

TEST_F(VafsTest, SteadyStatePlansNearDecodeDemand) {
  VafsController& ctl = make_controller(2);  // 720p ~ 430 MHz demand
  ASSERT_TRUE(ctl.attach());
  ASSERT_TRUE(run_session_to_finish());
  // With a 15 % margin the playing-phase plan (no download in flight)
  // should sit at 600 or 900 MHz, never max.
  const auto* predictor = ctl.decode_predictor(2);
  ASSERT_NE(predictor, nullptr);
  EXPECT_GT(predictor->observations(), 500u);
  const double fps = 30.0;
  const double demand_khz = predictor->predict() * fps * 1.15 / 1000.0;
  EXPECT_GT(demand_khz, 300'000.0);
  EXPECT_LT(demand_khz, 900'000.0);
  EXPECT_LT(ctl.decode_mape(), 0.5);
}

TEST_F(VafsTest, QoePreservedAtEveryQuality) {
  for (std::size_t rep = 0; rep < 4; ++rep) {
    VafsWorld fixture;  // fresh world per rep
    VafsController& ctl = fixture.make_controller(rep);
    ASSERT_TRUE(ctl.attach());
    ASSERT_TRUE(fixture.run_session_to_finish()) << "rep " << rep;
    EXPECT_LT(fixture.player_->qoe().drop_ratio(), 0.02) << "rep " << rep;
    EXPECT_EQ(fixture.player_->qoe().rebuffer_events, 0u) << "rep " << rep;
  }
}

TEST_F(VafsTest, RaceToIdleAblationBurnsMoreEnergy) {
  double energy_race = 0, energy_burst = 0;
  {
    VafsWorld fixture;
    VafsConfig config;
    config.race_to_idle_downloads = true;
    fixture.make_controller(2, config).attach();
    ASSERT_TRUE(fixture.run_session_to_finish());
    energy_race = fixture.cpu_.energy_mj();
  }
  {
    VafsWorld fixture;
    VafsConfig config;
    config.race_to_idle_downloads = false;  // burst to max during downloads
    fixture.make_controller(2, config).attach();
    ASSERT_TRUE(fixture.run_session_to_finish());
    energy_burst = fixture.cpu_.energy_mj();
  }
  EXPECT_LT(energy_race, energy_burst);
}

TEST_F(VafsTest, LargerMarginCostsMoreEnergy) {
  double lean = 0, fat = 0;
  {
    VafsWorld fixture;
    VafsConfig config;
    config.safety_margin = 0.05;
    fixture.make_controller(2, config).attach();
    ASSERT_TRUE(fixture.run_session_to_finish());
    lean = fixture.cpu_.energy_mj();
  }
  {
    VafsWorld fixture;
    VafsConfig config;
    config.safety_margin = 0.60;
    fixture.make_controller(2, config).attach();
    ASSERT_TRUE(fixture.run_session_to_finish());
    fat = fixture.cpu_.energy_mj();
  }
  EXPECT_LT(lean, fat);
}

TEST_F(VafsTest, DetachRestoresGovernor) {
  VafsController& ctl = make_controller(1);
  ASSERT_TRUE(ctl.attach());
  ASSERT_EQ(policy_->governor_name(), "userspace");
  ctl.detach("ondemand");
  EXPECT_EQ(policy_->governor_name(), "ondemand");
  const std::uint64_t writes = ctl.setspeed_writes();
  ctl.plan_now();  // must be a no-op when detached
  EXPECT_EQ(ctl.setspeed_writes(), writes);
}

TEST_F(VafsTest, SetspeedWritesAreDeduplicated) {
  VafsController& ctl = make_controller(2);
  ASSERT_TRUE(ctl.attach());
  ASSERT_TRUE(run_session_to_finish());
  // Thousands of plans (one per frame), but only a handful of distinct
  // frequency changes should reach sysfs.
  EXPECT_GT(ctl.plan_count(), 700u);
  EXPECT_LT(ctl.setspeed_writes(), ctl.plan_count() / 10);
}

TEST_F(VafsTest, ClassAwareSplitsPredictorsByFrameType) {
  VafsConfig config;
  config.class_aware = true;
  VafsController& ctl = make_controller(2, config);
  ASSERT_TRUE(ctl.attach());
  ASSERT_TRUE(run_session_to_finish());

  const auto* p = ctl.decode_predictor(2, /*idr=*/false);
  const auto* idr = ctl.decode_predictor(2, /*idr=*/true);
  ASSERT_NE(p, nullptr);
  ASSERT_NE(idr, nullptr);
  // 24 s * 30 fps = 720 frames, GOP 30 => 24 IDR + 696 P.
  EXPECT_EQ(idr->observations(), 24u);
  EXPECT_EQ(p->observations(), 696u);
  // IDR frames cost several times a P frame to decode.
  EXPECT_GT(idr->predict(), 1.5 * p->predict());
}

TEST_F(VafsTest, ClassAwareImprovesMapeOnIntraHeavyContent) {
  auto run_with = [](bool class_aware) {
    VafsWorld world;
    // Intra-heavy content: short GOP, big IDR frames.
    video::ContentParams params;
    params.gop_frames = 12;
    params.idr_weight = 6.0;
    world.content_ = video::ContentModel(11, params, &world.manifest_);
    VafsConfig config;
    config.class_aware = class_aware;
    world.make_controller(2, config).attach();
    EXPECT_TRUE(world.run_session_to_finish());
    return world.controller_->decode_mape();
  };
  const double mixed = run_with(false);
  const double split = run_with(true);
  EXPECT_LT(split, mixed * 0.8);
}

TEST_F(VafsTest, DroppedFrameTriggersBoost) {
  VafsConfig config;
  // Sabotage: trust one observation and plan with no margin from a
  // predictor fed artificially tiny costs — then verify the drop path
  // raises the plan. We emulate by planning at min via a huge negative...
  // Simpler: directly exercise the boost plumbing.
  VafsController& ctl = make_controller(2, config);
  ASSERT_TRUE(ctl.attach());
  bool done = false;
  player_->start([&] { done = true; });
  // Run until a few decodes have happened so the predictor is warm.
  while (!done && player_->decoded_frames() < 40) sim_.step();
  const std::uint32_t before = ctl.last_planned_khz();
  ctl.on_frame_dropped(player_->playhead_frame());
  const std::uint32_t after = ctl.last_planned_khz();
  EXPECT_GE(after, before);  // boost moves one OPP up (or stays at max)
  EXPECT_GT(after, 300'000u);
}


// ---------------------------------------------------------------- watchdog

TEST_F(VafsTest, WatchdogFailsOverOnConsecutiveWriteErrors) {
  VafsConfig config;
  config.watchdog.enabled = true;
  config.watchdog.write_error_threshold = 2;
  config.watchdog.hysteresis = sim::SimTime::seconds(1);
  VafsController& ctl = make_controller(2, config);

  bool fail_writes = true;
  tree_.set_write_interceptor(
      [&](std::string_view path, std::string_view) -> std::optional<sysfs::Errno> {
        if (fail_writes && path.ends_with("/scaling_setspeed")) return sysfs::Errno::kAccess;
        return std::nullopt;
      });

  // Governor switch succeeds, the first plan write is rejected (1 of 2).
  ASSERT_TRUE(ctl.attach());
  EXPECT_FALSE(ctl.in_fallback());
  EXPECT_EQ(ctl.sysfs_write_errors(), 1u);

  // Second rejection trips the failover: the policy goes back to ondemand.
  ctl.plan_now();
  EXPECT_TRUE(ctl.in_fallback());
  EXPECT_EQ(ctl.fallback_entries(), 1u);
  EXPECT_EQ(policy_->governor_name(), "ondemand");

  // While failed over the controller stops planning entirely.
  const auto writes_before = ctl.sysfs_write_errors();
  ctl.plan_now();
  EXPECT_EQ(ctl.sysfs_write_errors(), writes_before);

  // Channel recovers; after a clean hysteresis the controller re-takes
  // the policy and replans.
  fail_writes = false;
  sim_.run_until(sim_.now() + sim::SimTime::seconds(3));
  EXPECT_FALSE(ctl.in_fallback());
  EXPECT_EQ(policy_->governor_name(), "userspace");
  EXPECT_GT(ctl.setspeed_writes(), 0u);
  EXPECT_GT(ctl.fallback_time(), sim::SimTime::zero());
}

TEST_F(VafsTest, WatchdogPinMaxModeRunsFlatOut) {
  VafsConfig config;
  config.watchdog.enabled = true;
  config.watchdog.miss_threshold = 3;
  config.watchdog.miss_window = sim::SimTime::seconds(2);
  config.watchdog.mode = VafsWatchdogConfig::Mode::kPinMax;
  config.watchdog.hysteresis = sim::SimTime::seconds(30);  // stay in fallback
  VafsController& ctl = make_controller(2, config);
  ASSERT_TRUE(ctl.attach());

  // A burst of deadline misses inside the window trips the failover.
  ctl.on_frame_dropped(1);
  ctl.on_frame_dropped(2);
  EXPECT_FALSE(ctl.in_fallback());
  ctl.on_frame_dropped(3);
  EXPECT_TRUE(ctl.in_fallback());
  // kPinMax keeps the userspace governor but parks at fmax.
  EXPECT_EQ(policy_->governor_name(), "userspace");
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(VafsTest, WatchdogMissWindowTumbles) {
  VafsConfig config;
  config.watchdog.enabled = true;
  config.watchdog.miss_threshold = 3;
  config.watchdog.miss_window = sim::SimTime::seconds(1);
  VafsController& ctl = make_controller(2, config);
  ASSERT_TRUE(ctl.attach());

  // Two misses, then a quiet gap longer than the window: the counter
  // restarts, so two more misses do not trip it.
  ctl.on_frame_dropped(1);
  ctl.on_frame_dropped(2);
  sim_.run_until(sim_.now() + sim::SimTime::seconds(2));
  ctl.on_frame_dropped(3);
  ctl.on_frame_dropped(4);
  EXPECT_FALSE(ctl.in_fallback());
  ctl.on_frame_dropped(5);
  EXPECT_TRUE(ctl.in_fallback());
}

TEST_F(VafsTest, WatchdogDisabledCountsErrorsWithoutFailover) {
  VafsConfig config;  // watchdog off (default)
  VafsController& ctl = make_controller(2, config);
  bool fail_writes = false;
  tree_.set_write_interceptor(
      [&](std::string_view path, std::string_view) -> std::optional<sysfs::Errno> {
        if (fail_writes && path.ends_with("/scaling_setspeed")) return sysfs::Errno::kAccess;
        return std::nullopt;
      });
  ASSERT_TRUE(ctl.attach());
  fail_writes = true;
  ctl.on_frame_dropped(1);  // boost: forces a higher target -> a write
  EXPECT_GT(ctl.sysfs_write_errors(), 0u);
  EXPECT_FALSE(ctl.in_fallback());
  EXPECT_EQ(ctl.fallback_entries(), 0u);
  // Recovery is plan-driven: once writes succeed again the controller
  // carries on as if nothing happened.
  fail_writes = false;
  ctl.plan_now();
  EXPECT_FALSE(ctl.in_fallback());
}

TEST_F(VafsTest, WatchdogAttachBootsIntoFallbackWhenGovernorWriteFails) {
  VafsConfig config;
  config.watchdog.enabled = true;
  config.watchdog.hysteresis = sim::SimTime::seconds(1);
  VafsController& ctl = make_controller(2, config);
  bool fail_governor = true;
  tree_.set_write_interceptor(
      [&](std::string_view path, std::string_view) -> std::optional<sysfs::Errno> {
        if (fail_governor && path.ends_with("/scaling_governor")) return sysfs::Errno::kAccess;
        return std::nullopt;
      });
  // Without the watchdog this is a hard setup failure; with it the
  // controller attaches degraded and keeps retrying the takeover.
  ASSERT_TRUE(ctl.attach());
  EXPECT_TRUE(ctl.in_fallback());
  EXPECT_EQ(policy_->governor_name(), "ondemand");  // never switched

  fail_governor = false;
  sim_.run_until(sim_.now() + sim::SimTime::seconds(3));
  EXPECT_FALSE(ctl.in_fallback());
  EXPECT_EQ(policy_->governor_name(), "userspace");
}

TEST_F(VafsTest, SessionUnderSysfsFaultsFinishesWithFallbackResidency) {
  VafsConfig config;
  config.watchdog.enabled = true;
  config.watchdog.write_error_threshold = 2;
  config.watchdog.hysteresis = sim::SimTime::seconds(2);
  VafsController& ctl = make_controller(2, config);

  // Writes fail during a mid-session window, as the fault injector would
  // make them.
  tree_.set_write_interceptor(
      [this](std::string_view path, std::string_view) -> std::optional<sysfs::Errno> {
        if (!path.ends_with("/scaling_setspeed")) return std::nullopt;
        const auto now = sim_.now();
        if (now >= sim::SimTime::seconds(4) && now < sim::SimTime::seconds(8)) {
          return sysfs::Errno::kAccess;
        }
        return std::nullopt;
      });
  // Steady-state plans dedup to zero writes; frame drops inside the window
  // force boost writes, which is exactly the situation where a wedged
  // sysfs knob would otherwise leave the governor stuck mid-boost.
  sim_.at(sim::SimTime::seconds(5), [&ctl] { ctl.on_frame_dropped(1); });
  sim_.at(sim::SimTime::millis(5'500), [&ctl] { ctl.on_frame_dropped(2); });
  ASSERT_TRUE(ctl.attach());
  EXPECT_TRUE(run_session_to_finish());
  EXPECT_GT(ctl.fallback_entries(), 0u);
  EXPECT_FALSE(ctl.in_fallback());  // re-engaged once the window passed
  EXPECT_GT(ctl.fallback_time(), sim::SimTime::zero());
}

}  // namespace
}  // namespace vafs::core
