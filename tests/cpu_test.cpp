// Unit tests for the CPU substrate: OPP tables, the power model, and the
// cycle-exact execution/residency/energy accounting of CpuModel.
#include <gtest/gtest.h>

#include "cpu/cpu_model.h"
#include "cpu/opp.h"
#include "cpu/power_model.h"
#include "simcore/simulator.h"

namespace vafs::cpu {
namespace {

OppTable two_point_table() {
  return OppTable({{1'000'000, 900'000}, {2'000'000, 1'100'000}});
}

// ---------------------------------------------------------------- OppTable

TEST(OppTable, SortsAscending) {
  OppTable t({{900'000, 800'000}, {300'000, 600'000}, {600'000, 700'000}});
  EXPECT_EQ(t.at(0).freq_khz, 300'000u);
  EXPECT_EQ(t.at(2).freq_khz, 900'000u);
  EXPECT_EQ(t.min().freq_khz, 300'000u);
  EXPECT_EQ(t.max().freq_khz, 900'000u);
}

TEST(OppTable, IndexOf) {
  const OppTable t = OppTable::mobile_big_core();
  EXPECT_EQ(t.index_of(300'000), 0u);
  EXPECT_EQ(t.index_of(2'100'000), t.size() - 1);
  EXPECT_EQ(t.index_of(123), SIZE_MAX);
}

TEST(OppTable, ResolveAtLeastSnapsUp) {
  const OppTable t = OppTable::mobile_big_core();
  EXPECT_EQ(t.resolve(1, Relation::kAtLeast).freq_khz, 300'000u);
  EXPECT_EQ(t.resolve(900'001, Relation::kAtLeast).freq_khz, 1'200'000u);
  EXPECT_EQ(t.resolve(900'000, Relation::kAtLeast).freq_khz, 900'000u);
  EXPECT_EQ(t.resolve(9'999'999, Relation::kAtLeast).freq_khz, 2'100'000u);  // clamps
}

TEST(OppTable, ResolveAtMostSnapsDown) {
  const OppTable t = OppTable::mobile_big_core();
  EXPECT_EQ(t.resolve(899'999, Relation::kAtMost).freq_khz, 600'000u);
  EXPECT_EQ(t.resolve(900'000, Relation::kAtMost).freq_khz, 900'000u);
  EXPECT_EQ(t.resolve(1, Relation::kAtMost).freq_khz, 300'000u);  // clamps
}

TEST(OppTable, AvailableFrequenciesString) {
  EXPECT_EQ(two_point_table().available_frequencies_string(), "1000000 2000000");
}

TEST(OppTable, StepHelpersClampAtEdges) {
  const OppTable t = two_point_table();
  EXPECT_EQ(t.step_up(0), 1u);
  EXPECT_EQ(t.step_up(1), 1u);
  EXPECT_EQ(t.step_down(1), 0u);
  EXPECT_EQ(t.step_down(0), 0u);
}

TEST(OppTable, VoltageRampIsMonotonic) {
  for (const auto& table : {OppTable::mobile_big_core(), OppTable::mobile_little_core()}) {
    for (std::size_t i = 1; i < table.size(); ++i) {
      EXPECT_GT(table.at(i).volt_uv, table.at(i - 1).volt_uv);
    }
  }
}

// ------------------------------------------------------------- PowerModel

TEST(PowerModel, BusyPowerIncreasesSuperlinearlyWithOpp) {
  const CpuPowerModel model;
  const OppTable t = OppTable::mobile_big_core();
  double prev = 0.0;
  double prev_per_hz = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double mw = model.busy_mw(t.at(i));
    EXPECT_GT(mw, prev);
    const double per_hz = mw / t.at(i).freq_mhz();
    // Energy per cycle grows with frequency across the upper OPPs: the
    // voltage ramp makes high OPPs disproportionately expensive (the slack
    // VAFS exploits). At the bottom of the table leakage dominates, so a
    // small dip there is expected and realistic.
    if (i >= 3) {
      EXPECT_GT(per_hz, prev_per_hz);
    }
    prev = mw;
    prev_per_hz = per_hz;
  }
  // End to end, the top OPP must cost meaningfully more per cycle.
  EXPECT_GT(model.busy_mw(t.max()) / t.max().freq_mhz(),
            1.5 * model.busy_mw(t.at(2)) / t.at(2).freq_mhz());
}

TEST(PowerModel, MagnitudesInMobileRange) {
  const CpuPowerModel model;
  const OppTable t = OppTable::mobile_big_core();
  EXPECT_GT(model.busy_mw(t.max()), 1000.0);  // big core flat-out > 1 W
  EXPECT_LT(model.busy_mw(t.max()), 3000.0);
  EXPECT_LT(model.busy_mw(t.min()), 150.0);
  EXPECT_LT(model.idle_mw(), model.busy_mw(t.min()));
}

// --------------------------------------------------------------- CpuModel

class CpuModelTest : public ::testing::Test {
 protected:
  CpuModelTest()
      : cpu_(sim_, two_point_table(), CpuPowerModel(), sim::SimTime::micros(100)) {}

  sim::Simulator sim_;
  CpuModel cpu_;
};

TEST_F(CpuModelTest, StartsAtMinFrequencyIdle) {
  EXPECT_EQ(cpu_.cur_freq_khz(), 1'000'000u);
  EXPECT_FALSE(cpu_.busy());
  EXPECT_EQ(cpu_.transition_count(), 0u);
}

TEST_F(CpuModelTest, TaskCompletesAtExactCycleTime) {
  // 1e9 cycles at 1 GHz = 1 s.
  sim::SimTime done;
  cpu_.submit("t", 1e9, [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done, sim::SimTime::seconds(1));
  EXPECT_FALSE(cpu_.busy());
}

TEST_F(CpuModelTest, HigherFrequencyFinishesProportionallyFaster) {
  cpu_.set_frequency(2'000'000);
  sim_.run_until(sim::SimTime::millis(1));  // absorb the transition stall
  sim::SimTime done;
  cpu_.submit("t", 1e9, [&] { done = sim_.now(); });
  const sim::SimTime start = sim_.now();
  sim_.run();
  EXPECT_EQ((done - start).as_micros(), 500'000);
}

TEST_F(CpuModelTest, ProcessorSharingSplitsCapacity) {
  // Two equal tasks at 1 GHz: both finish together after 2x the solo time.
  int finished = 0;
  sim::SimTime done_a, done_b;
  cpu_.submit("a", 5e8, [&] { ++finished; done_a = sim_.now(); });
  cpu_.submit("b", 5e8, [&] { ++finished; done_b = sim_.now(); });
  sim_.run();
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(done_a, sim::SimTime::seconds(1));
  EXPECT_EQ(done_b, sim::SimTime::seconds(1));
}

TEST_F(CpuModelTest, UnequalTasksFinishInOrder) {
  sim::SimTime done_small, done_big;
  cpu_.submit("small", 1e8, [&] { done_small = sim_.now(); });
  cpu_.submit("big", 1e9, [&] { done_big = sim_.now(); });
  sim_.run();
  // Shared until the small one finishes at 2e8 cycles wall-equivalent
  // (200 ms), then the big one runs alone.
  EXPECT_EQ(done_small.as_micros(), 200'000);
  EXPECT_EQ(done_big.as_micros(), 1'100'000);
}

TEST_F(CpuModelTest, CancelStopsCallback) {
  bool ran = false;
  const auto id = cpu_.submit("t", 1e9, [&] { ran = true; });
  EXPECT_TRUE(cpu_.cancel(id));
  sim_.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(cpu_.cancel(id));  // already gone
}

TEST_F(CpuModelTest, BusyAndIdleResidencySplit) {
  cpu_.submit("t", 5e8, nullptr);  // 500 ms at 1 GHz
  sim_.run();
  sim_.run_until(sim::SimTime::seconds(2));
  EXPECT_EQ(cpu_.total_busy_time().as_micros(), 500'000);
  EXPECT_EQ(cpu_.total_idle_time().as_micros(), 1'500'000);
  EXPECT_EQ(cpu_.time_in_state(0).as_micros(), 2'000'000);
}

TEST_F(CpuModelTest, FrequencyChangeCountsAndReprogramIsFree) {
  cpu_.set_frequency(2'000'000);
  EXPECT_EQ(cpu_.transition_count(), 1u);
  cpu_.set_frequency(2'000'000);  // same OPP: no-op
  EXPECT_EQ(cpu_.transition_count(), 1u);
  cpu_.set_frequency(1'000'000, Relation::kAtMost);
  EXPECT_EQ(cpu_.transition_count(), 2u);
}

TEST_F(CpuModelTest, TransitionStallDelaysCompletion) {
  cpu_.submit("t", 1e8, nullptr);  // 100 ms at 1 GHz solo
  sim_.run_until(sim::SimTime::millis(50));
  cpu_.set_frequency(2'000'000);  // halfway: 5e7 cycles left
  sim::SimTime done;
  cpu_.submit("marker", 0, nullptr);  // forces reschedule bookkeeping
  sim_.run();
  // Remaining 5e7 cycles at 2 GHz = 25 ms, plus the 100 us stall.
  EXPECT_EQ(cpu_.total_busy_time().as_micros(), 50'000 + 100 + 25'000);
}

TEST_F(CpuModelTest, EnergyMatchesHandComputation) {
  const CpuPowerModel model;
  cpu_.submit("t", 1e9, nullptr);  // busy 1 s at OPP0
  sim_.run();
  sim_.run_until(sim::SimTime::seconds(3));  // idle 2 s
  const double expected = 1.0 * model.busy_mw(two_point_table().at(0)) + 2.0 * model.idle_mw();
  EXPECT_NEAR(cpu_.energy_mj(), expected, 1e-6);
}

TEST_F(CpuModelTest, TransitionEnergyIsCharged) {
  const double before = cpu_.energy_mj();
  cpu_.set_frequency(2'000'000);
  sim_.run_until(sim::SimTime::micros(100));  // idle through the stall
  const double after = cpu_.energy_mj();
  // Only idle power over 100 us plus one transition's energy.
  const CpuPowerModel model;
  EXPECT_NEAR(after - before, model.transition_uj() / 1000.0 + 100e-6 * model.idle_mw(), 1e-9);
}

TEST_F(CpuModelTest, PeltRisesWhenBusyAndDecaysWhenIdle) {
  cpu_.set_frequency(2'000'000);  // max: busy contribution = 1.0
  sim_.run();
  cpu_.submit("t", 2e9, nullptr);  // 1 s at 2 GHz
  sim_.run_until(sim::SimTime::millis(400));
  const double busy_util = cpu_.pelt_util();
  EXPECT_GT(busy_util, 0.95);  // > 10 half-lives of busy
  sim_.run();                  // finish task
  sim_.run_until(sim_.now() + sim::SimTime::millis(32));
  const double decayed = cpu_.pelt_util();
  EXPECT_NEAR(decayed, busy_util / 2.0, 0.05);  // one idle half-life
}

TEST_F(CpuModelTest, PeltIsFrequencyInvariant) {
  // Always-busy at min frequency should read ~0.5 of max capacity.
  cpu_.submit("t", 1e12, nullptr);
  sim_.run_until(sim::SimTime::millis(500));
  EXPECT_NEAR(cpu_.pelt_util(), 0.5, 0.02);
}

TEST_F(CpuModelTest, FreqListenerFires) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> changes;
  cpu_.add_freq_listener([&](std::uint32_t from, std::uint32_t to) {
    changes.emplace_back(from, to);
  });
  cpu_.set_frequency(2'000'000);
  cpu_.set_frequency(2'000'000);
  cpu_.set_frequency(500'000, Relation::kAtMost);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0], std::make_pair(1'000'000u, 2'000'000u));
  EXPECT_EQ(changes[1], std::make_pair(2'000'000u, 1'000'000u));
}

TEST_F(CpuModelTest, ZeroCycleTaskCompletesImmediately) {
  bool ran = false;
  cpu_.submit("t", 0, [&] { ran = true; });
  sim_.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim_.now(), sim::SimTime::zero());
}

TEST_F(CpuModelTest, CompletionCallbackCanSubmitMoreWork) {
  sim::SimTime second_done;
  cpu_.submit("first", 1e8, [&] {
    cpu_.submit("second", 1e8, [&] { second_done = sim_.now(); });
  });
  sim_.run();
  EXPECT_EQ(second_done.as_micros(), 200'000);
}

TEST_F(CpuModelTest, TimeInStateTracksPerOppWallTime) {
  sim_.run_until(sim::SimTime::millis(300));
  cpu_.set_frequency(2'000'000);
  sim_.run_until(sim::SimTime::millis(1000));
  EXPECT_EQ(cpu_.time_in_state(0).as_micros(), 300'000);
  EXPECT_EQ(cpu_.time_in_state(1).as_micros(), 700'000);
}

}  // namespace
}  // namespace vafs::cpu
