// Tests for the cpufreq policy core and its sysfs binding: limits
// enforcement, governor switching by string, and the kernel attribute
// formats userspace tools depend on.
#include <gtest/gtest.h>

#include "cpu/cpufreq_policy.h"
#include "cpu/cpufreq_sysfs.h"
#include "governors/registry.h"
#include "simcore/simulator.h"
#include "sysfs/tree.h"

namespace vafs::cpu {
namespace {

class CpufreqTest : public ::testing::Test {
 protected:
  CpufreqTest() : cpu_(sim_, OppTable::mobile_big_core(), CpuPowerModel()) {
    governors::register_standard(registry_);
    policy_ = std::make_unique<CpufreqPolicy>(sim_, cpu_, registry_, "performance");
    binder_ = std::make_unique<CpufreqSysfs>(tree_, *policy_, 0);
  }

  std::string attr(const std::string& name) { return binder_->dir() + "/" + name; }

  std::string read(const std::string& name) {
    auto r = tree_.read(attr(name));
    EXPECT_TRUE(r.ok()) << name;
    std::string v = r.value_or("");
    if (!v.empty() && v.back() == '\n') v.pop_back();
    return v;
  }

  sim::Simulator sim_;
  CpuModel cpu_;
  GovernorRegistry registry_;
  sysfs::Tree tree_;
  std::unique_ptr<CpufreqPolicy> policy_;
  std::unique_ptr<CpufreqSysfs> binder_;
};

TEST_F(CpufreqTest, DefaultGovernorStartsImmediately) {
  // performance pins max at start().
  EXPECT_EQ(policy_->governor_name(), "performance");
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(CpufreqTest, RegistryRejectsUnknownGovernor) {
  EXPECT_EQ(policy_->set_governor("nonexistent").error(), sysfs::Errno::kInval);
  EXPECT_EQ(policy_->governor_name(), "performance");
}

TEST_F(CpufreqTest, GovernorSwitchStopsOldStartsNew) {
  ASSERT_TRUE(policy_->set_governor("powersave").ok());
  EXPECT_EQ(policy_->governor_name(), "powersave");
  EXPECT_EQ(policy_->cur_khz(), 300'000u);
  ASSERT_TRUE(policy_->set_governor("performance").ok());
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(CpufreqTest, SetTargetClampsToLimits) {
  ASSERT_TRUE(policy_->set_governor("userspace").ok());
  policy_->set_min(600'000);
  policy_->set_max(1'500'000);
  policy_->set_target(300'000, Relation::kAtLeast);
  EXPECT_EQ(policy_->cur_khz(), 600'000u);
  policy_->set_target(2'100'000, Relation::kAtLeast);
  EXPECT_EQ(policy_->cur_khz(), 1'500'000u);
}

TEST_F(CpufreqTest, LimitsClampToHardwareRange) {
  policy_->set_min(1);
  EXPECT_EQ(policy_->min_khz(), 300'000u);
  policy_->set_max(99'999'999);
  EXPECT_EQ(policy_->max_khz(), 2'100'000u);
}

TEST_F(CpufreqTest, RaisingMinAboveMaxDragsMaxUp) {
  policy_->set_max(900'000);
  policy_->set_min(1'500'000);
  EXPECT_EQ(policy_->min_khz(), 1'500'000u);
  EXPECT_GE(policy_->max_khz(), 1'500'000u);
}

TEST_F(CpufreqTest, LoweringMaxReclampsCurrentFrequency) {
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
  policy_->set_max(900'000);
  EXPECT_LE(policy_->cur_khz(), 900'000u);
}

// ---- sysfs attribute surface ----

TEST_F(CpufreqTest, AvailableFrequenciesFormat) {
  EXPECT_EQ(read("scaling_available_frequencies"),
            "300000 600000 900000 1200000 1500000 1800000 2000000 2100000");
}

TEST_F(CpufreqTest, AvailableGovernorsListsStandardSet) {
  const std::string govs = read("scaling_available_governors");
  for (const char* name : {"performance", "powersave", "userspace", "ondemand", "conservative",
                           "interactive", "schedutil"}) {
    EXPECT_NE(govs.find(name), std::string::npos) << name;
  }
}

TEST_F(CpufreqTest, CpuinfoBounds) {
  EXPECT_EQ(read("cpuinfo_min_freq"), "300000");
  EXPECT_EQ(read("cpuinfo_max_freq"), "2100000");
  EXPECT_EQ(read("cpuinfo_transition_latency"), "150000");  // ns
}

TEST_F(CpufreqTest, GovernorSwitchViaSysfsWrite) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "powersave\n").ok());
  EXPECT_EQ(read("scaling_governor"), "powersave");
  EXPECT_EQ(read("scaling_cur_freq"), "300000");
  EXPECT_EQ(tree_.write(attr("scaling_governor"), "bogus").error(), sysfs::Errno::kInval);
}

TEST_F(CpufreqTest, SetspeedRejectedUnlessUserspace) {
  EXPECT_EQ(read("scaling_setspeed"), "<unsupported>");
  EXPECT_EQ(tree_.write(attr("scaling_setspeed"), "900000").error(), sysfs::Errno::kInval);

  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "userspace").ok());
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "900000").ok());
  EXPECT_EQ(read("scaling_cur_freq"), "900000");
  EXPECT_EQ(read("scaling_setspeed"), "900000");
}

TEST_F(CpufreqTest, SetspeedSnapsUpToOppGrid) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "userspace").ok());
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "1000000").ok());
  EXPECT_EQ(read("scaling_cur_freq"), "1200000");
}

TEST_F(CpufreqTest, SetspeedRejectsGarbage) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "userspace").ok());
  EXPECT_EQ(tree_.write(attr("scaling_setspeed"), "12x3").error(), sysfs::Errno::kInval);
  EXPECT_EQ(tree_.write(attr("scaling_setspeed"), "").error(), sysfs::Errno::kInval);
  EXPECT_EQ(tree_.write(attr("scaling_setspeed"), "-5").error(), sysfs::Errno::kInval);
}

TEST_F(CpufreqTest, MinMaxFreqWritable) {
  ASSERT_TRUE(tree_.write(attr("scaling_min_freq"), "600000").ok());
  ASSERT_TRUE(tree_.write(attr("scaling_max_freq"), "1800000").ok());
  EXPECT_EQ(read("scaling_min_freq"), "600000");
  EXPECT_EQ(read("scaling_max_freq"), "1800000");
  EXPECT_EQ(tree_.write(attr("scaling_min_freq"), "abc").error(), sysfs::Errno::kInval);
}

TEST_F(CpufreqTest, TimeInStateAccountsWallTimePerOpp) {
  // performance: pinned at max. Run 1 s.
  sim_.run_until(sim::SimTime::seconds(1));
  const std::string stats = read("stats/time_in_state");
  // Kernel units: 10 ms ticks. Max OPP should show ~100 ticks.
  EXPECT_NE(stats.find("2100000 100"), std::string::npos) << stats;
  EXPECT_NE(stats.find("300000 0"), std::string::npos) << stats;
}

TEST_F(CpufreqTest, TotalTransCounts) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "userspace").ok());
  const std::string before = read("stats/total_trans");
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "600000").ok());
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "900000").ok());
  EXPECT_EQ(std::stoi(read("stats/total_trans")), std::stoi(before) + 2);
}

TEST_F(CpufreqTest, TransTableRecordsMatrix) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "userspace").ok());
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "600000").ok());   // 2.1G -> 600M
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "900000").ok());   // 600M -> 900M
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "600000").ok());   // 900M -> 600M
  ASSERT_TRUE(tree_.write(attr("scaling_setspeed"), "900000").ok());   // 600M -> 900M

  EXPECT_EQ(cpu_.transitions_between(cpu_.opps().index_of(600'000),
                                     cpu_.opps().index_of(900'000)),
            2u);
  EXPECT_EQ(cpu_.transitions_between(cpu_.opps().index_of(900'000),
                                     cpu_.opps().index_of(600'000)),
            1u);
  EXPECT_EQ(cpu_.transitions_between(0, 0), 0u);

  const std::string table = read("stats/trans_table");
  EXPECT_NE(table.find("From : To"), std::string::npos);
  EXPECT_NE(table.find("600000:"), std::string::npos);
}

TEST_F(CpufreqTest, TunablesDirectoryFollowsGovernor) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "ondemand").ok());
  EXPECT_TRUE(tree_.exists(attr("ondemand/up_threshold")));
  EXPECT_EQ(read("ondemand/up_threshold"), "80");

  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "interactive").ok());
  EXPECT_FALSE(tree_.exists(attr("ondemand")));
  EXPECT_TRUE(tree_.exists(attr("interactive/hispeed_freq")));
}

TEST_F(CpufreqTest, TunableWriteValidation) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "ondemand").ok());
  ASSERT_TRUE(tree_.write(attr("ondemand/up_threshold"), "95").ok());
  EXPECT_EQ(read("ondemand/up_threshold"), "95");
  EXPECT_EQ(tree_.write(attr("ondemand/up_threshold"), "0").error(), sysfs::Errno::kInval);
  EXPECT_EQ(tree_.write(attr("ondemand/up_threshold"), "101").error(), sysfs::Errno::kInval);
  EXPECT_EQ(tree_.write(attr("ondemand/sampling_rate"), "10").error(), sysfs::Errno::kInval);
}

TEST_F(CpufreqTest, ParseKhzRejectsNonDigits) {
  EXPECT_EQ(parse_khz("1200000"), 1'200'000u);
  EXPECT_EQ(parse_khz(""), std::nullopt);
  EXPECT_EQ(parse_khz("12 00"), std::nullopt);
  EXPECT_EQ(parse_khz("99999999999"), std::nullopt);
  EXPECT_EQ(parse_khz("+5"), std::nullopt);
  // UINT32_MAX is the kernel's CPUFREQ_ENTRY_INVALID, not a programmable
  // value: explicitly invalid rather than a sentinel collision.
  EXPECT_EQ(parse_khz("4294967295"), std::nullopt);
  EXPECT_EQ(parse_khz("4294967294"), 4'294'967'294u);
}

TEST_F(CpufreqTest, SetspeedRejectsEntryInvalidLiteral) {
  ASSERT_TRUE(tree_.write(attr("scaling_governor"), "userspace").ok());
  EXPECT_EQ(tree_.write(attr("scaling_setspeed"), "4294967295").error(), sysfs::Errno::kInval);
}

TEST_F(CpufreqTest, BinderRemovesDirectoryOnDestruction) {
  const std::string dir = binder_->dir();
  EXPECT_TRUE(tree_.exists(dir));
  binder_.reset();
  EXPECT_FALSE(tree_.exists(dir));
}

}  // namespace
}  // namespace vafs::cpu
