// Unit tests for the cpuidle extension: state selection per strategy,
// energy arithmetic, and integration with CpuModel's idle-period tracking.
#include <gtest/gtest.h>

#include "cpu/cpu_model.h"
#include "cpu/cpuidle.h"
#include "simcore/simulator.h"

namespace vafs::cpu {
namespace {

TEST(Cpuidle, ShallowOnlyAlwaysPicksWfi) {
  CpuidleModel model(CpuidleParams::mobile(), CpuidleStrategy::kShallowOnly);
  model.record_idle(sim::SimTime::micros(100));
  model.record_idle(sim::SimTime::seconds(10));
  EXPECT_EQ(model.entries(0), 2u);
  EXPECT_EQ(model.entries(1), 0u);
  EXPECT_EQ(model.entries(2), 0u);
}

TEST(Cpuidle, OraclePicksDepthByDuration) {
  CpuidleModel model(CpuidleParams::mobile(), CpuidleStrategy::kOracle);
  model.record_idle(sim::SimTime::micros(500));  // short: WFI
  model.record_idle(sim::SimTime::millis(10));   // medium: core-off
  model.record_idle(sim::SimTime::millis(500));  // long: cluster-off
  EXPECT_EQ(model.entries(0), 1u);
  EXPECT_EQ(model.entries(1), 1u);
  EXPECT_EQ(model.entries(2), 1u);
}

TEST(Cpuidle, WfiEnergyMatchesFlatPower) {
  CpuidleModel model(CpuidleParams::mobile(), CpuidleStrategy::kShallowOnly);
  const double mj = model.record_idle(sim::SimTime::seconds(2));
  EXPECT_NEAR(mj, 2.0 * 18.0, 1e-9);
}

TEST(Cpuidle, DeepStateEnergyIncludesOverhead) {
  CpuidleParams params = CpuidleParams::mobile();
  CpuidleModel model(params, CpuidleStrategy::kOracle);
  const sim::SimTime d = sim::SimTime::millis(100);
  const double mj = model.record_idle(d);
  // cluster-off: 0.8 ms at 300 mW + 99.2 ms at 1.5 mW.
  const double expected = 0.0008 * 300.0 + 0.0992 * 1.5;
  EXPECT_NEAR(mj, expected, 1e-9);
  EXPECT_LT(mj, 0.1 * 18.0);  // far below WFI pricing
}

TEST(Cpuidle, OracleNeverWorseThanShallow) {
  CpuidleModel oracle(CpuidleParams::mobile(), CpuidleStrategy::kOracle);
  CpuidleModel shallow(CpuidleParams::mobile(), CpuidleStrategy::kShallowOnly);
  for (const std::int64_t us : {50, 500, 1500, 3000, 9000, 20'000, 1'000'000}) {
    const double o = oracle.record_idle(sim::SimTime::micros(us));
    const double s = shallow.record_idle(sim::SimTime::micros(us));
    EXPECT_LE(o, s + 1e-12) << us << " us";
  }
}

TEST(Cpuidle, MenuAdaptsToObservedDurations) {
  CpuidleModel model(CpuidleParams::mobile(), CpuidleStrategy::kMenu);
  // Train on long idles: the predictor learns to go deep.
  for (int i = 0; i < 20; ++i) model.record_idle(sim::SimTime::millis(200));
  EXPECT_GT(model.entries(2), 10u);

  // Now a burst of very short idles: the first few still pick deep (the
  // misprediction), then the prediction adapts toward shallow.
  const auto deep_before = model.entries(2);
  for (int i = 0; i < 20; ++i) model.record_idle(sim::SimTime::micros(200));
  const auto deep_after = model.entries(2);
  EXPECT_LT(deep_after - deep_before, 10u);
  EXPECT_GT(model.entries(0) + model.entries(1), 10u);
}

TEST(Cpuidle, MenuMispredictionCostsEnergy) {
  // A menu trained on long idles facing one short idle pays the deep
  // state's overhead for nothing.
  CpuidleModel model(CpuidleParams::mobile(), CpuidleStrategy::kMenu);
  for (int i = 0; i < 20; ++i) model.record_idle(sim::SimTime::millis(200));
  const double mj = model.record_idle(sim::SimTime::micros(300));
  // 300 us all inside the 0.8 ms entry/exit window at 300 mW.
  EXPECT_NEAR(mj, 0.0003 * 300.0, 1e-9);
  EXPECT_GT(mj, 0.0003 * 18.0);  // worse than WFI would have been
}

TEST(Cpuidle, StrategyNames) {
  EXPECT_STREQ(cpuidle_strategy_name(CpuidleStrategy::kShallowOnly), "shallow");
  EXPECT_STREQ(cpuidle_strategy_name(CpuidleStrategy::kMenu), "menu");
  EXPECT_STREQ(cpuidle_strategy_name(CpuidleStrategy::kOracle), "oracle");
}

// ---- CpuModel integration ----

class CpuidleIntegration : public ::testing::Test {
 protected:
  CpuidleIntegration()
      : cpu_(sim_, OppTable::mobile_big_core(), CpuPowerModel()),
        idle_(CpuidleParams::mobile(), CpuidleStrategy::kOracle) {
    cpu_.set_cpuidle(&idle_);
  }

  sim::Simulator sim_;
  CpuModel cpu_;
  CpuidleModel idle_;
};

TEST_F(CpuidleIntegration, IdlePeriodsAreRecordedBetweenTasks) {
  cpu_.submit("a", 3e6, nullptr);  // 10 ms at 300 MHz
  sim_.run();
  sim_.run_until(sim::SimTime::millis(110));  // 100 ms idle
  cpu_.submit("b", 3e6, nullptr);
  sim_.run();
  // Two completed periods: [0, 0) from construction-to-first-submit
  // (zero-length, not recorded) and the 100 ms gap.
  EXPECT_EQ(idle_.periods(), 1u);
  EXPECT_EQ(idle_.entries(2), 1u);  // 100 ms -> cluster-off under oracle
}

TEST_F(CpuidleIntegration, EnergyUsesDeepIdlePricing) {
  sim_.run_until(sim::SimTime::seconds(10));  // pure idle, period still open
  const double with_deep = cpu_.energy_mj();
  // Oracle prices 10 s of idle at cluster-off (1.5 mW -> ~15 mJ), far
  // below the flat WFI pricing (18 mW -> 180 mJ).
  EXPECT_NEAR(with_deep, 10.0 * 1.5, 1.0);
  EXPECT_LT(with_deep, 0.2 * 10.0 * 18.0);
}

TEST_F(CpuidleIntegration, BusyEnergyUnchangedByCpuidle) {
  cpu_.submit("t", 3e8, nullptr);  // 1 s busy at 300 MHz
  sim_.run();
  const double busy_only = cpu_.energy_mj();
  const double expected_busy =
      1.0 * cpu_.power_model().busy_mw(cpu_.opps().at(0));
  EXPECT_NEAR(busy_only, expected_busy, 0.5);
}

}  // namespace
}  // namespace vafs::cpu
