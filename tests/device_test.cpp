// Device-profile library tests: registry invariants every profile must
// hold (sane OPP ladders, positive power coefficients, descending cluster
// capacities), the compatibility contracts of the profile-driven session
// bring-up (profile "default" and the big_little shim are bit-identical
// to the legacy paths, pinned by trace digest), and the determinism of
// weighted population draws (a pure function of the session seed).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.h"
#include "device/profile.h"
#include "obs/trace.h"

namespace vafs::device {
namespace {

// ------------------------------------------------------------- registry

TEST(ProfileRegistry, ListsDefaultFirstAndResolvesEveryName) {
  const auto& names = profile_names();
  ASSERT_GE(names.size(), 5u);
  EXPECT_EQ(names.front(), "default");
  for (const auto& name : names) {
    const DeviceProfile& p = profile(name);
    EXPECT_EQ(p.name, name);
    EXPECT_FALSE(p.legacy()) << name << " must carry explicit clusters";
  }
}

TEST(ProfileRegistry, UnknownNamesThrowListingTheKnownOnes) {
  try {
    profile("nokia3310");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nokia3310"), std::string::npos);
    EXPECT_NE(what.find("flagship"), std::string::npos);
  }
  EXPECT_THROW(PopulationMix::named("everyone"), std::out_of_range);
}

TEST(ProfileRegistry, OppLaddersAreMonotoneInFrequencyAndVoltage) {
  for (const auto& name : profile_names()) {
    for (const ClusterSpec& c : profile(name).clusters) {
      const std::string where = name + "/" + c.name;
      ASSERT_GE(c.opps.size(), 2u) << where;
      for (std::size_t i = 1; i < c.opps.size(); ++i) {
        EXPECT_GT(c.opps.at(i).freq_khz, c.opps.at(i - 1).freq_khz) << where;
        EXPECT_GE(c.opps.at(i).volt_uv, c.opps.at(i - 1).volt_uv) << where;
      }
      EXPECT_GT(c.opps.min().freq_khz, 0u) << where;
      EXPECT_GT(c.opps.min().volt_uv, 0u) << where;
    }
  }
}

TEST(ProfileRegistry, PowerModelsAndPenaltiesArePhysical) {
  for (const auto& name : profile_names()) {
    const DeviceProfile& p = profile(name);
    EXPECT_GT(p.display_mw, 0.0) << name;
    for (const ClusterSpec& c : p.clusters) {
      const std::string where = name + "/" + c.name;
      EXPECT_GT(c.power.c_eff_mw_per_mhz_v2, 0.0) << where;
      EXPECT_GT(c.power.leak_mw_at_1v, 0.0) << where;
      EXPECT_GT(c.power.idle_mw, 0.0) << where;
      EXPECT_GE(c.power.transition_uj, 0.0) << where;
      EXPECT_GT(c.cycle_penalty, 0.0) << where;
      EXPECT_GT(c.transition_latency, sim::SimTime::zero()) << where;
    }
  }
}

TEST(ProfileRegistry, ClustersAreOrderedByStrictlyDescendingCapacity) {
  for (const auto& name : profile_names()) {
    const DeviceProfile& p = profile(name);
    for (std::size_t i = 1; i < p.clusters.size(); ++i) {
      EXPECT_GT(p.clusters[i - 1].capacity_khz(), p.clusters[i].capacity_khz())
          << name << ": clusters[" << i - 1 << "] vs [" << i << "]";
    }
  }
}

// ------------------------------------------------------- legacy bit-identity

core::SessionConfig base_config(const std::string& governor) {
  core::SessionConfig config;
  config.governor = governor;
  config.fixed_rep = 2;  // 720p
  config.media_duration = sim::SimTime::seconds(20);
  config.net = core::NetProfile::kFair;
  config.seed = 9001;
  return config;
}

struct DigestRun {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  core::SessionResult result;
};

DigestRun run_digest(const core::SessionConfig& config) {
  obs::Tracer tracer(obs::Tracer::Config{0});  // digest-only, no ring
  core::SessionHooks hooks;
  hooks.tracer = &tracer;
  DigestRun out;
  out.result = core::run_session(config, hooks);
  out.digest = tracer.digest();
  out.events = tracer.recorded();
  return out;
}

TEST(ProfileCompat, DefaultProfileReplaysTheLegacySingleCoreBitIdentically) {
  // profile("default") must be the *same device* as a default-constructed
  // SessionConfig (the legacy scalar path), event for event.
  for (const char* governor : {"ondemand", "vafs"}) {
    const DigestRun legacy = run_digest(base_config(governor));
    core::SessionConfig profiled = base_config(governor);
    profiled.profile = profile("default");
    const DigestRun named = run_digest(profiled);
    EXPECT_EQ(named.digest, legacy.digest) << governor;
    EXPECT_EQ(named.events, legacy.events) << governor;
    EXPECT_EQ(named.result.device, "default");
    ASSERT_EQ(named.result.clusters.size(), 1u);
    EXPECT_EQ(named.result.clusters[0].name, "big");
  }
}

TEST(ProfileCompat, BigLittleShimDigestsArePinnedToThePreRefactorTraces) {
  // The five digests below were captured on the pre-refactor two-model
  // code path (commit before src/device existed). The big_little=true
  // shim must keep replaying those exact event streams.
  struct Pinned {
    const char* governor;
    std::uint64_t digest;
    std::uint64_t events;
    std::uint64_t frames_big;
    std::uint64_t frames_little;
  };
  const Pinned cases[] = {
      {"ondemand", 0xce5b23755b966c76ull, 6247, 600, 0},
      {"schedutil", 0x4a32b565037dd60dull, 22489, 600, 0},
      {"vafs", 0x612db58505828402ull, 1884, 3, 597},
      {"conservative", 0xa4f19298db5a518dull, 4131, 600, 0},
  };
  for (const Pinned& c : cases) {
    core::SessionConfig config = base_config(c.governor);
    config.big_little = true;
    const DigestRun run = run_digest(config);
    EXPECT_EQ(run.digest, c.digest) << c.governor;
    EXPECT_EQ(run.events, c.events) << c.governor;
    EXPECT_EQ(run.result.decode_frames_big, c.frames_big) << c.governor;
    EXPECT_EQ(run.result.decode_frames_little, c.frames_little) << c.governor;
    ASSERT_EQ(run.result.clusters.size(), 2u) << c.governor;
    EXPECT_EQ(run.result.clusters[0].name, "big");
    EXPECT_EQ(run.result.clusters[1].name, "little");
  }

  // A lossy 1080p run through the shim: ABR, rebuffers and retries on top.
  core::SessionConfig lossy;
  lossy.governor = "vafs";
  lossy.big_little = true;
  lossy.fixed_rep = 3;
  lossy.media_duration = sim::SimTime::seconds(20);
  lossy.net = core::NetProfile::kPoor;
  lossy.abr = core::AbrKind::kRate;
  lossy.seed = 7;
  const DigestRun run = run_digest(lossy);
  EXPECT_EQ(run.digest, 0xcb97d2adce731613ull);
  EXPECT_EQ(run.events, 1898u);
  EXPECT_EQ(run.result.decode_frames_big, 5u);
  EXPECT_EQ(run.result.decode_frames_little, 595u);
}

// ------------------------------------------------------- profile sessions

TEST(ProfileSession, EveryRegisteredProfileStreamsToCompletion) {
  for (const auto& name : profile_names()) {
    core::SessionConfig config = base_config("schedutil");
    config.profile = profile(name);
    const DigestRun run = run_digest(config);
    EXPECT_TRUE(run.result.finished) << name;
    EXPECT_EQ(run.result.device, name);
    ASSERT_EQ(run.result.clusters.size(), profile(name).cluster_count()) << name;
    double cluster_mj = 0.0;
    std::uint64_t transitions = 0;
    for (std::size_t i = 0; i < run.result.clusters.size(); ++i) {
      const auto& c = run.result.clusters[i];
      EXPECT_EQ(c.name, profile(name).clusters[i].name) << name;
      cluster_mj += c.cpu_mj;
      transitions += c.freq_transitions;
    }
    // Per-cluster energy covers the flattened totals (bring-up energy
    // before the session-start meter reset makes the sum a hair larger).
    EXPECT_GE(cluster_mj, run.result.energy.cpu_mj) << name;
    EXPECT_NEAR(cluster_mj, run.result.energy.cpu_mj, 1.0) << name;
    EXPECT_EQ(transitions,
              run.result.freq_transitions + run.result.freq_transitions_little)
        << name;
  }
}

TEST(ProfileSession, FlagshipVafsParksDecodeOffThePrimeCluster) {
  core::SessionConfig config = base_config("vafs");
  config.profile = profile("flagship");
  const DigestRun run = run_digest(config);
  ASSERT_TRUE(run.result.finished);
  ASSERT_EQ(run.result.clusters.size(), 3u);
  // Steady 720p decode fits an efficient cluster; the prime core should
  // see almost none of it.
  EXPECT_GT(run.result.decode_frames_little, run.result.decode_frames_big);
  std::uint64_t per_cluster = 0;
  for (const auto& c : run.result.clusters) per_cluster += c.decode_frames;
  EXPECT_EQ(per_cluster, run.result.decode_frames_big + run.result.decode_frames_little);
}

// ----------------------------------------------------------- population

TEST(PopulationMix, PickIsAPureFunctionOfTheSeed) {
  const PopulationMix mix = PopulationMix::named("global");
  ASSERT_GE(mix.entries.size(), 4u);  // the >=4-profile fleet mix
  for (std::uint64_t seed = 0; seed < 512; ++seed) {
    const std::size_t first = mix.pick_index(seed);
    ASSERT_LT(first, mix.entries.size());
    EXPECT_EQ(mix.pick_index(seed), first) << seed;
    EXPECT_EQ(&mix.pick(seed), &mix.entries[first].profile) << seed;
  }
  // A fresh copy of the same mix draws identically: nothing hides in
  // object identity (this is what makes resume safe).
  const PopulationMix again = PopulationMix::named("global");
  for (std::uint64_t seed = 1000; seed < 1128; ++seed) {
    EXPECT_EQ(again.pick_index(seed), mix.pick_index(seed)) << seed;
  }
}

TEST(PopulationMix, DrawFrequenciesMatchTheWeights) {
  for (const auto& name : PopulationMix::mix_names()) {
    const PopulationMix mix = PopulationMix::named(name);
    double total_weight = 0.0;
    for (const auto& e : mix.entries) total_weight += e.weight;
    ASSERT_GT(total_weight, 0.0);

    constexpr std::uint64_t kDraws = 20000;
    std::vector<std::uint64_t> counts(mix.entries.size(), 0);
    for (std::uint64_t seed = 0; seed < kDraws; ++seed) ++counts[mix.pick_index(seed)];

    for (std::size_t i = 0; i < mix.entries.size(); ++i) {
      const double expected = mix.entries[i].weight / total_weight;
      const double observed = static_cast<double>(counts[i]) / kDraws;
      EXPECT_NEAR(observed, expected, 0.015)
          << name << " entry " << mix.entries[i].profile.name;
    }
  }
}

TEST(PopulationMix, SessionsDrawTheirDeviceFromTheMixPerSeed) {
  const PopulationMix mix = PopulationMix::named("budget");
  std::map<std::string, int> drawn;
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    core::SessionConfig config = base_config("ondemand");
    config.seed = seed;
    config.population = mix;
    const DigestRun run = run_digest(config);
    EXPECT_TRUE(run.result.finished);
    EXPECT_EQ(run.result.device, mix.entries[mix.pick_index(seed)].profile.name);
    ++drawn[run.result.device];
  }
  EXPECT_FALSE(drawn.empty());
}

TEST(PopulationMix, EmptyMixAndLegacyProfileKeepTheScalarDevicePath) {
  // Default-constructed config: no profile, no mix — the session reports
  // the legacy device shape (one "big" cluster, no device name).
  const DigestRun run = run_digest(base_config("ondemand"));
  EXPECT_TRUE(run.result.device.empty());
  ASSERT_EQ(run.result.clusters.size(), 1u);
  EXPECT_EQ(run.result.clusters[0].name, "big");
  EXPECT_TRUE(core::SessionConfig{}.profile.legacy());
  EXPECT_TRUE(core::SessionConfig{}.population.empty());
}

}  // namespace
}  // namespace vafs::device
