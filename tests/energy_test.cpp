// Unit tests for the device energy meter.
#include <gtest/gtest.h>

#include "energy/meter.h"
#include "simcore/simulator.h"

namespace vafs::energy {
namespace {

class MeterTest : public ::testing::Test {
 protected:
  MeterTest()
      : cpu_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()),
        radio_(sim_, net::RadioParams::lte()),
        meter_(sim_, cpu_, radio_, /*display_mw=*/400.0) {}

  sim::Simulator sim_;
  cpu::CpuModel cpu_;
  net::RadioModel radio_;
  DeviceEnergyMeter meter_;
};

TEST_F(MeterTest, ZeroAtConstruction) {
  const auto r = meter_.report();
  EXPECT_EQ(r.wall, sim::SimTime::zero());
  EXPECT_EQ(r.cpu_mj, 0.0);
  EXPECT_EQ(r.radio_mj, 0.0);
  EXPECT_EQ(r.display_mj, 0.0);
  EXPECT_EQ(r.total_mj(), 0.0);
  EXPECT_EQ(r.mean_mw(), 0.0);
}

TEST_F(MeterTest, DisplayEnergyIsWallTimesPower) {
  sim_.run_until(sim::SimTime::seconds(10));
  const auto r = meter_.report();
  EXPECT_EQ(r.wall, sim::SimTime::seconds(10));
  EXPECT_NEAR(r.display_mj, 4000.0, 1e-9);  // 10 s * 400 mW
}

TEST_F(MeterTest, AggregatesComponents) {
  radio_.acquire(nullptr);
  cpu_.submit("t", 3e8, nullptr);  // 1 s at min freq (300 MHz)
  sim_.run_until(sim::SimTime::seconds(2));
  const auto r = meter_.report();
  EXPECT_GT(r.cpu_mj, 0.0);
  EXPECT_GT(r.radio_mj, 0.0);
  EXPECT_NEAR(r.cpu_mj, cpu_.energy_mj(), 1e-9);
  EXPECT_NEAR(r.radio_mj, radio_.energy_mj(), 1e-9);
  EXPECT_NEAR(r.total_mj(), r.cpu_mj + r.radio_mj + r.display_mj, 1e-12);
  EXPECT_NEAR(r.mean_mw(), r.total_mj() / 2.0, 1e-9);
  EXPECT_NEAR(r.cpu_mean_mw(), r.cpu_mj / 2.0, 1e-9);
}

TEST_F(MeterTest, ResetRebaselines) {
  cpu_.submit("t", 3e8, nullptr);
  sim_.run_until(sim::SimTime::seconds(2));
  meter_.reset();
  const auto r0 = meter_.report();
  EXPECT_EQ(r0.wall, sim::SimTime::zero());
  EXPECT_EQ(r0.cpu_mj, 0.0);

  sim_.run_until(sim::SimTime::seconds(3));
  const auto r1 = meter_.report();
  EXPECT_EQ(r1.wall, sim::SimTime::seconds(1));
  // Only idle CPU power in the post-reset second.
  EXPECT_NEAR(r1.cpu_mj, cpu_.power_model().idle_mw(), 1e-6);
}

TEST_F(MeterTest, TwoMetersAreIndependent) {
  DeviceEnergyMeter late(sim_, cpu_, radio_, 400.0);
  sim_.run_until(sim::SimTime::seconds(1));
  DeviceEnergyMeter later(sim_, cpu_, radio_, 400.0);
  sim_.run_until(sim::SimTime::seconds(2));
  EXPECT_NEAR(late.report().wall.as_seconds_f(), 2.0, 1e-9);
  EXPECT_NEAR(later.report().wall.as_seconds_f(), 1.0, 1e-9);
}

}  // namespace
}  // namespace vafs::energy
