// Tests for the experiment engine (src/exp): grid expansion, CLI parsing,
// aggregate dispersion and merge, JSON emission — and the two properties
// the parallel runner rests on: run_session is deterministic for a fixed
// (config, seed), and a parallel grid run is bit-identical to a serial
// one.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "exp/aggregate.h"
#include "exp/grid.h"
#include "exp/json.h"
#include "exp/options.h"
#include "exp/runner.h"
#include "exp/sinks.h"

namespace vafs::exp {
namespace {

core::SessionConfig small_config() {
  core::SessionConfig config;
  config.media_duration = sim::SimTime::seconds(20);
  config.net = core::NetProfile::kFair;
  config.fixed_rep = 2;
  return config;
}

/// Bitwise equality across every scalar field the aggregates and tables
/// consume; catches any nondeterminism, not just "close enough" drift.
void expect_identical(const core::SessionResult& a, const core::SessionResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.energy.cpu_mj, b.energy.cpu_mj);
  EXPECT_EQ(a.energy.radio_mj, b.energy.radio_mj);
  EXPECT_EQ(a.energy.display_mj, b.energy.display_mj);
  EXPECT_EQ(a.qoe.startup_delay, b.qoe.startup_delay);
  EXPECT_EQ(a.qoe.rebuffer_events, b.qoe.rebuffer_events);
  EXPECT_EQ(a.qoe.rebuffer_time, b.qoe.rebuffer_time);
  EXPECT_EQ(a.qoe.frames_presented, b.qoe.frames_presented);
  EXPECT_EQ(a.qoe.frames_dropped, b.qoe.frames_dropped);
  EXPECT_EQ(a.qoe.deadline_misses, b.qoe.deadline_misses);
  EXPECT_EQ(a.qoe.quality_switches, b.qoe.quality_switches);
  EXPECT_EQ(a.qoe.mean_bitrate_kbps, b.qoe.mean_bitrate_kbps);
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.played, b.played);
  EXPECT_EQ(a.live_latency, b.live_latency);
  EXPECT_EQ(a.freq_transitions, b.freq_transitions);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.radio_promotions, b.radio_promotions);
  EXPECT_EQ(a.vafs_decode_mape, b.vafs_decode_mape);
  EXPECT_EQ(a.vafs_plans, b.vafs_plans);
  EXPECT_EQ(a.vafs_setspeed_writes, b.vafs_setspeed_writes);
  ASSERT_EQ(a.residency.size(), b.residency.size());
  for (std::size_t i = 0; i < a.residency.size(); ++i) {
    EXPECT_EQ(a.residency[i].first, b.residency[i].first);
    EXPECT_EQ(a.residency[i].second, b.residency[i].second);
  }
}

TEST(SessionDeterminism, SameConfigAndSeedIsBitIdentical) {
  for (const char* governor : {"ondemand", "vafs"}) {
    core::SessionConfig config = small_config();
    config.governor = governor;
    config.seed = 12345;
    const core::SessionResult first = core::run_session(config);
    const core::SessionResult second = core::run_session(config);
    ASSERT_TRUE(first.finished);
    expect_identical(first, second);
  }
}

TEST(SessionDeterminism, DifferentSeedsDiffer) {
  core::SessionConfig config = small_config();
  config.seed = 1;
  const core::SessionResult a = core::run_session(config);
  config.seed = 2;
  const core::SessionResult b = core::run_session(config);
  EXPECT_NE(a.energy.cpu_mj, b.energy.cpu_mj);
}

TEST(Grid, CartesianProductLastAxisFastest) {
  ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"}).reps({{0, "360p"}, {2, "720p"}});
  const auto scenarios = grid.scenarios();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].id, "governor=ondemand rep=360p");
  EXPECT_EQ(scenarios[1].id, "governor=ondemand rep=720p");
  EXPECT_EQ(scenarios[2].id, "governor=vafs rep=360p");
  EXPECT_EQ(scenarios[3].id, "governor=vafs rep=720p");
  EXPECT_EQ(scenarios[3].config.governor, "vafs");
  EXPECT_EQ(scenarios[3].config.fixed_rep, 2u);
  ASSERT_NE(scenarios[2].label("rep"), nullptr);
  EXPECT_EQ(*scenarios[2].label("rep"), "360p");
  EXPECT_EQ(scenarios[2].label("nope"), nullptr);
}

TEST(Grid, EmptyGridIsSingleBaseScenario) {
  core::SessionConfig base = small_config();
  base.governor = "schedutil";
  const auto scenarios = ExperimentGrid(base).scenarios();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].id, "base");
  EXPECT_EQ(scenarios[0].config.governor, "schedutil");
}

TEST(Runner, ParallelMatchesSerialBitIdentically) {
  ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "schedutil", "vafs"}).reps({{0, "360p"}, {2, "720p"}});

  RunOptions serial;
  serial.jobs = 1;
  serial.seeds = {101, 202};
  RunOptions parallel = serial;
  parallel.jobs = 4;

  const ResultSet s = run_grid(grid, serial);
  const ResultSet p = run_grid(grid, parallel);

  ASSERT_EQ(s.all().size(), p.all().size());
  for (std::size_t i = 0; i < s.all().size(); ++i) {
    const ScenarioResult& ss = s.all()[i];
    const ScenarioResult& pp = p.all()[i];
    EXPECT_EQ(ss.spec.id, pp.spec.id);
    ASSERT_EQ(ss.runs.size(), pp.runs.size());
    for (std::size_t r = 0; r < ss.runs.size(); ++r) expect_identical(ss.runs[r], pp.runs[r]);
    // Aggregation happens serially in both cases, so it matches bitwise too.
    EXPECT_EQ(ss.agg.cpu_mj.mean(), pp.agg.cpu_mj.mean());
    EXPECT_EQ(ss.agg.cpu_mj.stddev(), pp.agg.cpu_mj.stddev());
    EXPECT_EQ(ss.agg.runs, pp.agg.runs);
  }
}

TEST(Runner, ArenaSharedContentStoreIsExact) {
  // An arena shares synthesized content between sessions with the same
  // (seed, content, duration) workload. A session run against a store
  // pre-warmed by a *different governor's* session must be bit-identical
  // to one run with no arena at all — the memo is pure, not stateful.
  core::SessionConfig config = small_config();
  config.governor = "ondemand";
  const core::SessionResult bare = core::run_session(config);

  core::SessionArena arena;
  core::SessionConfig warmup = config;
  warmup.governor = "schedutil";
  core::run_session(warmup, {}, &arena);  // fills the shared store
  const core::SessionResult warmed = core::run_session(config, {}, &arena);
  expect_identical(bare, warmed);

  // A different seed is a different workload: it must get its own store,
  // not collide with the warm one.
  core::SessionConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  const core::SessionResult bare2 = core::run_session(reseeded);
  const core::SessionResult warmed2 = core::run_session(reseeded, {}, &arena);
  expect_identical(bare2, warmed2);
}

TEST(Runner, ResultSetLookupAndAggregates) {
  ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  RunOptions opts;
  opts.jobs = 2;
  opts.seeds = {101, 202, 303};
  const ResultSet results = run_grid(grid, opts);

  const ScenarioResult& vafs = results.at({{"governor", "vafs"}});
  EXPECT_EQ(vafs.agg.runs, 3);
  EXPECT_TRUE(vafs.agg.all_finished);
  EXPECT_EQ(vafs.runs.size(), 3u);
  EXPECT_EQ(vafs.seeds, opts.seeds);
  // min <= mean <= max, and dispersion over distinct seeds is nonzero.
  EXPECT_LE(vafs.agg.cpu_mj.min(), vafs.agg.cpu_mj.mean());
  EXPECT_LE(vafs.agg.cpu_mj.mean(), vafs.agg.cpu_mj.max());
  EXPECT_GT(vafs.agg.cpu_mj.stddev(), 0.0);
  // The VAFS headline holds in the small grid too.
  const ScenarioResult& ondemand = results.at({{"governor", "ondemand"}});
  EXPECT_LT(vafs.agg.cpu_mj.mean(), ondemand.agg.cpu_mj.mean());
}

TEST(Runner, HookFactoryFiresPerTask) {
  ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  RunOptions opts;
  opts.jobs = 3;
  opts.seeds = {101, 202};
  std::vector<int> fired(4, 0);
  opts.hooks = [&fired](const ScenarioSpec&, std::size_t scenario_index,
                        std::size_t seed_index) {
    core::SessionHooks hooks;
    int* slot = &fired[scenario_index * 2 + seed_index];
    hooks.on_ready = [slot](core::SessionLive& live) {
      ASSERT_NE(live.sim, nullptr);
      ++*slot;
    };
    return hooks;
  };
  run_grid(grid, opts);
  for (const int count : fired) EXPECT_EQ(count, 1);
}

TEST(Aggregate, MergeMatchesSequential) {
  core::SessionConfig config = small_config();
  std::vector<core::SessionResult> results;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    config.seed = seed;
    results.push_back(core::run_session(config));
  }

  Aggregate whole;
  for (const auto& r : results) whole.add(r);

  Aggregate left, right;
  left.add(results[0]);
  left.add(results[1]);
  right.add(results[2]);
  right.add(results[3]);
  left.merge(right);

  EXPECT_EQ(left.runs, whole.runs);
  EXPECT_EQ(left.all_finished, whole.all_finished);
  for (const auto& m : Aggregate::metrics()) {
    const sim::OnlineStats& merged = left.*(m.member);
    const sim::OnlineStats& direct = whole.*(m.member);
    EXPECT_EQ(merged.count(), direct.count()) << m.name;
    EXPECT_EQ(merged.min(), direct.min()) << m.name;
    EXPECT_EQ(merged.max(), direct.max()) << m.name;
    EXPECT_NEAR(merged.mean(), direct.mean(), 1e-9 * (1.0 + std::abs(direct.mean())))
        << m.name;
    EXPECT_NEAR(merged.stddev(), direct.stddev(), 1e-6 * (1.0 + direct.stddev())) << m.name;
  }
}

TEST(Aggregate, MetricTableCoversKnownFields) {
  // A change to the metric list shows up here on purpose: the JSON/CSV
  // schema is part of the bench contract.
  const auto& metrics = Aggregate::metrics();
  EXPECT_EQ(metrics.size(), 35u);
  EXPECT_STREQ(metrics.front().name, "cpu_mj");
}

TEST(Options, ParsesAllFlags) {
  const char* argv[] = {"bench", "--jobs", "8", "--seeds=1,2,3", "--quick",
                        "--out-json", "x.json", "--out-csv=none"};
  BenchOptions options;
  std::string error;
  ASSERT_TRUE(parse_bench_args(8, const_cast<char**>(argv), &options, &error)) << error;
  EXPECT_EQ(options.jobs, 8);
  EXPECT_EQ(options.effective_jobs(), 8);
  EXPECT_EQ(options.seeds, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(options.quick);
  EXPECT_EQ(options.effective_seeds(), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(options.out_json, "x.json");
  EXPECT_EQ(options.out_csv, "none");
}

TEST(Options, RejectsBadInput) {
  BenchOptions options;
  std::string error;
  {
    const char* argv[] = {"bench", "--jobs", "0"};
    EXPECT_FALSE(parse_bench_args(3, const_cast<char**>(argv), &options, &error));
  }
  {
    const char* argv[] = {"bench", "--seeds", "1,,2"};
    EXPECT_FALSE(parse_bench_args(3, const_cast<char**>(argv), &options, &error));
  }
  {
    const char* argv[] = {"bench", "--frobnicate"};
    EXPECT_FALSE(parse_bench_args(2, const_cast<char**>(argv), &options, &error));
    EXPECT_NE(error.find("frobnicate"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--out-json"};
    EXPECT_FALSE(parse_bench_args(2, const_cast<char**>(argv), &options, &error));
  }
}

TEST(Options, DefaultsAreSuiteDefaults) {
  BenchOptions options;
  EXPECT_EQ(options.seeds, (std::vector<std::uint64_t>{101, 202, 303}));
  EXPECT_FALSE(options.quick);
  EXPECT_GE(options.effective_jobs(), 1);
}

TEST(Json, StructureAndEscaping) {
  Json root = Json::object();
  root.set("name", "a \"quoted\"\nvalue");
  root.set("count", 3);
  root.set("ratio", 0.25);
  root.set("flag", true);
  Json list = Json::array();
  list.push(1).push(Json());
  root.set("list", std::move(list));

  const std::string compact = root.dump(0);
  EXPECT_EQ(compact,
            "{\"name\":\"a \\\"quoted\\\"\\nvalue\",\"count\":3,\"ratio\":0.25,"
            "\"flag\":true,\"list\":[1,null]}");
  // Non-finite numbers degrade to null rather than emitting invalid JSON.
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(0), "null");
  EXPECT_EQ(json_number(0.1), "0.1");
}

TEST(Json, ParseRoundTripsWriterOutput) {
  Json root = Json::object();
  root.set("name", "a \"quoted\"\nvalue \t with\\escapes");
  root.set("count", 3);
  root.set("ratio", -0.25);
  root.set("big", 1.5e300);
  root.set("flag", true);
  root.set("nothing", Json());
  Json list = Json::array();
  list.push(1).push(Json()).push("x").push(Json::array()).push(Json::object());
  root.set("list", std::move(list));
  Json nested = Json::object();
  nested.set("inner", 7);
  root.set("nested", std::move(nested));

  // Both renderings (indented and compact) parse back to a tree that
  // re-renders byte-identically — the loader sees exactly what the
  // writer meant, member order included.
  for (const int indent : {0, 2}) {
    Json parsed;
    std::string error;
    ASSERT_TRUE(json_parse(root.dump(indent), &parsed, &error)) << error;
    EXPECT_EQ(parsed.dump(indent), root.dump(indent));
  }
}

TEST(Json, ParseAccessorsAndEscapes) {
  Json v;
  std::string error;
  ASSERT_TRUE(json_parse(R"({"s": "a\u0041\n/", "n": -1.5e2, "b": false, "a": [1, 2]})", &v,
                         &error))
      << error;
  ASSERT_EQ(v.kind(), Json::Kind::kObject);
  EXPECT_EQ(v.find("s")->str(), "aA\n/");
  EXPECT_EQ(v.find("n")->number(), -150.0);
  EXPECT_FALSE(v.find("b")->boolean());
  ASSERT_EQ(v.find("a")->items().size(), 2u);
  EXPECT_EQ(v.find("a")->items()[1].number(), 2.0);
  // Duplicate keys keep the last value, matching Json::set.
  ASSERT_TRUE(json_parse(R"({"k": 1, "k": 2})", &v, &error));
  EXPECT_EQ(v.find("k")->number(), 2.0);
}

TEST(Json, ParseRejectsMalformedInput) {
  const char* bad[] = {
      "",                 // no value
      "{",                // unterminated object
      "[1, 2",            // unterminated array
      "[1, ]",            // trailing comma
      "{\"k\" 1}",        // missing colon
      "{k: 1}",           // unquoted key
      "\"\\q\"",          // unknown escape
      "\"\\u12g4\"",      // bad hex digit
      "01",               // leading zero
      "1.",               // bare fraction dot
      "1e",               // bare exponent
      "nul",              // truncated literal
      "true false",       // trailing garbage
      "\"unterminated",   // unterminated string
      "\x01",             // control character
  };
  for (const char* text : bad) {
    Json v;
    std::string error;
    EXPECT_FALSE(json_parse(text, &v, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty());
  }
  // Pathological nesting is rejected, not stack-overflowed.
  std::string deep(500, '[');
  deep += std::string(500, ']');
  Json v;
  std::string error;
  EXPECT_FALSE(json_parse(deep, &v, &error));
}

TEST(Sinks, ReportJsonAndCsvCoverEveryScenario) {
  ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  RunOptions run_options;
  run_options.jobs = 2;
  run_options.seeds = {101, 202};
  std::vector<Section> sections;
  sections.push_back(Section{"main", run_grid(grid, run_options)});

  BenchOptions options;
  options.jobs = 2;
  options.seeds = {101, 202};
  const Json report = bench_report_json("t1", "title", options, sections);
  const std::string text = report.dump();
  EXPECT_NE(text.find("\"bench\": \"t1\""), std::string::npos);
  EXPECT_NE(text.find("governor=vafs"), std::string::npos);
  EXPECT_NE(text.find("\"cpu_mj\""), std::string::npos);
  EXPECT_NE(text.find("\"stddev\""), std::string::npos);

  std::ostringstream csv;
  write_bench_csv(csv, sections);
  const std::string csv_text = csv.str();
  // Header + 2 scenarios x all metrics.
  std::size_t lines = 0;
  for (const char c : csv_text) lines += c == '\n';
  EXPECT_EQ(lines, 1u + 2u * Aggregate::metrics().size());
  EXPECT_EQ(csv_text.rfind("section,scenario,metric,mean,stddev,min,max,q50,q95,runs", 0), 0u);
}

// ------------------------------------------- CSV quantile-guard columns

namespace {

/// Parses one CSV line on commas (the bench CSV never quotes: section,
/// scenario and metric names are comma-free by construction).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t comma = line.find(',', start);
    out.push_back(line.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

TEST(Sinks, CsvQuantileGuardsRoundTrip) {
  // The guard quantiles folded into the CSV must (a) keep the header
  // ordering aligned with Aggregate::metrics() declaration order, and
  // (b) equal an independent nearest-rank recomputation from the per-seed
  // session values — the round trip the plotting tools depend on.
  ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  RunOptions run_options;
  run_options.jobs = 2;
  run_options.seeds = {101, 202, 303, 404, 505};
  run_options.trace = true;  // digest pseudo-rows must carry the new shape
  std::vector<Section> sections;
  sections.push_back(Section{"main", run_grid(grid, run_options)});

  std::ostringstream csv;
  write_bench_csv(csv, sections);
  std::istringstream lines(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "section,scenario,metric,mean,stddev,min,max,q50,q95,runs");

  const auto quantile = [](std::vector<double> v, double p) {
    std::sort(v.begin(), v.end());
    std::size_t rank = static_cast<std::size_t>(std::ceil(p * static_cast<double>(v.size())));
    if (rank == 0) rank = 1;
    return v[std::min(rank, v.size()) - 1];
  };

  const auto& metrics = Aggregate::metrics();
  for (const auto& sr : sections[0].results.all()) {
    // One row per metric, in declaration order, before any pseudo-rows.
    for (std::size_t k = 0; k < metrics.size(); ++k) {
      ASSERT_TRUE(std::getline(lines, line));
      const std::vector<std::string> cells = split_csv(line);
      ASSERT_EQ(cells.size(), 10u) << line;
      EXPECT_EQ(cells[1], sr.spec.id);
      EXPECT_EQ(cells[2], metrics[k].name);

      std::vector<double> column;
      double values[kMetricCount];
      for (const auto& run : sr.runs) {
        Aggregate::session_values(run, values);
        column.push_back(values[k]);
      }
      // The CSV renders doubles as %.6g (trace::CsvWriter); recompute and
      // render the same way so the comparison is exact, not approximate.
      const auto g6 = [](double v) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return std::string(buf);
      };
      EXPECT_EQ(cells[7], g6(quantile(column, 0.50))) << line;
      EXPECT_EQ(cells[8], g6(quantile(column, 0.95))) << line;
    }
    // Skip this scenario's trace-digest pseudo-rows (one per seed); they
    // must carry the widened 10-cell shape too.
    for (std::size_t i = 0; i < sr.runs.size(); ++i) {
      ASSERT_TRUE(std::getline(lines, line));
      EXPECT_EQ(split_csv(line).size(), 10u) << line;
      EXPECT_EQ(split_csv(line)[2].rfind("trace_digest[", 0), 0u) << line;
    }
  }
}


// ------------------------------------------------------- failure capture

TEST(Runner, FailedRunsAreRecordedNotFatal) {
  // An invalid scenario (kTrace with no trace) throws SessionError per
  // run; the grid must keep going, record each failure with scenario +
  // seed context, and aggregate only the good scenario.
  core::SessionConfig good = small_config();
  core::SessionConfig bad = small_config();
  bad.net = core::NetProfile::kTrace;  // trace left empty -> SessionError

  std::vector<ScenarioSpec> scenarios(2);
  scenarios[0].id = "good";
  scenarios[0].config = good;
  scenarios[1].id = "bad";
  scenarios[1].config = bad;

  for (const int jobs : {1, 4}) {
    RunOptions opts;
    opts.jobs = jobs;
    opts.seeds = {101, 202};
    const ResultSet results = run_grid(scenarios, opts);

    const ScenarioResult& ok = results.all()[0];
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.agg.runs, 2);
    EXPECT_TRUE(ok.agg.all_finished);

    const ScenarioResult& failed = results.all()[1];
    EXPECT_FALSE(failed.ok());
    ASSERT_EQ(failed.failures.size(), 2u);
    EXPECT_EQ(failed.agg.runs, 0);
    EXPECT_FALSE(failed.agg.all_finished);
    EXPECT_EQ(failed.failures[0].seed, 101u);
    EXPECT_EQ(failed.failures[0].seed_index, 0u);
    EXPECT_EQ(failed.failures[1].seed, 202u);
    // The message is self-describing: scenario id, seed, and the cause.
    EXPECT_NE(failed.failures[0].message.find("scenario 'bad'"), std::string::npos)
        << failed.failures[0].message;
    EXPECT_NE(failed.failures[0].message.find("seed 101"), std::string::npos);
    EXPECT_NE(failed.failures[0].message.find("trace"), std::string::npos);
  }
}

TEST(Runner, FailureReportIsDeterministicAcrossJobs) {
  std::vector<ScenarioSpec> scenarios(1);
  scenarios[0].id = "bad";
  scenarios[0].config = small_config();
  scenarios[0].config.net = core::NetProfile::kTrace;

  RunOptions serial;
  serial.jobs = 1;
  serial.seeds = {5, 6, 7};
  RunOptions parallel = serial;
  parallel.jobs = 3;
  const ResultSet s = run_grid(scenarios, serial);
  const ResultSet p = run_grid(scenarios, parallel);
  ASSERT_EQ(s.all()[0].failures.size(), 3u);
  ASSERT_EQ(p.all()[0].failures.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(s.all()[0].failures[i].seed, p.all()[0].failures[i].seed);
    EXPECT_EQ(s.all()[0].failures[i].message, p.all()[0].failures[i].message);
  }
}

TEST(Sinks, FailuresSurfaceInJsonAndCsvOnlyWhenPresent) {
  std::vector<ScenarioSpec> scenarios(2);
  scenarios[0].id = "good";
  scenarios[0].config = small_config();
  scenarios[1].id = "bad";
  scenarios[1].config = small_config();
  scenarios[1].config.net = core::NetProfile::kTrace;

  RunOptions opts;
  opts.seeds = {101};
  std::vector<Section> sections;
  sections.push_back(Section{"main", run_grid(scenarios, opts)});

  const Json report = bench_report_json("rx", "t", BenchOptions{}, sections);
  const std::string text = report.dump();
  EXPECT_NE(text.find("\"failed_runs\""), std::string::npos);
  EXPECT_NE(text.find("scenario 'bad' seed 101"), std::string::npos);
  // The clean scenario's JSON object carries no failure keys at all.
  EXPECT_EQ(text.find("\"failed_runs\""), text.rfind("\"failed_runs\""));

  std::ostringstream csv;
  write_bench_csv(csv, sections);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("bad,failed_runs,1"), std::string::npos);
  EXPECT_EQ(csv_text.find("good,failed_runs"), std::string::npos);
}

TEST(Runner, ParallelMatchesSerialUnderFaults) {
  // The fault layer must not disturb the runner's bit-identity guarantee:
  // a faulted grid over --jobs 4 equals the serial run exactly.
  core::SessionConfig base = small_config();
  base.media_duration = sim::SimTime::seconds(30);
  base.fault = fault::FaultPlanConfig::harsh();
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;
  base.vafs.watchdog.enabled = true;
  ExperimentGrid grid(base);
  grid.governors({"ondemand", "vafs"});

  RunOptions serial;
  serial.jobs = 1;
  serial.seeds = {101, 202};
  RunOptions parallel = serial;
  parallel.jobs = 4;
  const ResultSet s = run_grid(grid, serial);
  const ResultSet p = run_grid(grid, parallel);
  ASSERT_EQ(s.all().size(), p.all().size());
  for (std::size_t i = 0; i < s.all().size(); ++i) {
    ASSERT_EQ(s.all()[i].runs.size(), p.all()[i].runs.size());
    for (std::size_t r = 0; r < s.all()[i].runs.size(); ++r) {
      expect_identical(s.all()[i].runs[r], p.all()[i].runs[r]);
      EXPECT_EQ(s.all()[i].runs[r].fault_windows, p.all()[i].runs[r].fault_windows);
      EXPECT_EQ(s.all()[i].runs[r].vafs_fallback_time, p.all()[i].runs[r].vafs_fallback_time);
      EXPECT_EQ(s.all()[i].runs[r].qoe.fetch_retries, p.all()[i].runs[r].qoe.fetch_retries);
    }
  }
}

// ------------------------------------------------- cooperative task timeout

TEST(Runner, TinyTaskTimeoutBecomesACapturedFailure) {
  // A 1 ms wall-clock budget cannot cover a full session: the deadline
  // check (every 4096 events) fires and the task lands in the scenario's
  // failure list as a captured failure, exactly like any other throw —
  // the grid keeps going, nothing wedges, artifacts record the message.
  core::SessionConfig config = small_config();
  config.media_duration = sim::SimTime::seconds(600);  // plenty of events
  ExperimentGrid grid(config);
  grid.governors({"ondemand"});

  RunOptions opts;
  opts.jobs = 1;
  opts.seeds = {101, 202};
  opts.task_timeout_ms = 1;
  const ResultSet rs = run_grid(grid.scenarios(), opts);
  ASSERT_EQ(rs.all().size(), 1u);
  const ScenarioResult& sr = rs.all()[0];
  ASSERT_FALSE(sr.failures.empty());
  for (const RunFailure& f : sr.failures) {
    EXPECT_NE(f.message.find("wall-clock task timeout: task_timeout_ms=1 exceeded"),
              std::string::npos)
        << f.message;
  }
  EXPECT_FALSE(sr.agg.all_finished);
  // Failed slots stay default-constructed.
  EXPECT_EQ(sr.runs[sr.failures[0].seed_index].sim_events, 0u);
}

TEST(Runner, GenerousTaskTimeoutIsBitwiseInvisible) {
  ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});

  RunOptions plain;
  plain.jobs = 1;
  plain.seeds = {101, 202};
  plain.trace = true;
  const ResultSet a = run_grid(grid.scenarios(), plain);

  RunOptions timed = plain;
  timed.task_timeout_ms = 60 * 1000;
  const ResultSet b = run_grid(grid.scenarios(), timed);

  ASSERT_EQ(a.all().size(), b.all().size());
  for (std::size_t s = 0; s < a.all().size(); ++s) {
    ASSERT_TRUE(a.all()[s].ok());
    ASSERT_TRUE(b.all()[s].ok());
    for (std::size_t r = 0; r < a.all()[s].runs.size(); ++r) {
      expect_identical(a.all()[s].runs[r], b.all()[s].runs[r]);
      // The deadline probe must not touch the event stream.
      EXPECT_EQ(a.all()[s].runs[r].trace_digest, b.all()[s].runs[r].trace_digest);
    }
  }
}

TEST(Runner, TaskTimeoutAppliesOnTheBatchPathToo) {
  core::SessionConfig config = small_config();
  config.media_duration = sim::SimTime::seconds(600);
  ExperimentGrid grid(config);
  grid.governors({"ondemand"});

  RunOptions opts;
  opts.jobs = 1;
  opts.seeds = {101, 202, 303};
  opts.batch = 3;
  opts.task_timeout_ms = 1;
  const ResultSet rs = run_grid(grid.scenarios(), opts);
  ASSERT_EQ(rs.all().size(), 1u);
  EXPECT_FALSE(rs.all()[0].failures.empty());
  for (const RunFailure& f : rs.all()[0].failures) {
    EXPECT_NE(f.message.find("wall-clock task timeout"), std::string::npos) << f.message;
  }
}

TEST(Options, SuperviseAndChaosFlagsParse) {
  const char* argv[] = {"bench",
                        "--supervise",
                        "4",
                        "--task-timeout-ms",
                        "5000",
                        "--task-deadline-ms=9000",
                        "--task-retries",
                        "5",
                        "--heartbeat-ms",
                        "100",
                        "--heartbeat-timeout-ms",
                        "900",
                        "--worker-as-limit-mb",
                        "512",
                        "--worker-rss-limit-mb=256",
                        "--chaos-seed",
                        "42",
                        "--chaos-crash",
                        "0.01",
                        "--chaos-exit=0.5",
                        "--chaos-stall",
                        "1.0"};
  BenchOptions options;
  std::string error;
  ASSERT_TRUE(parse_bench_args(static_cast<int>(std::size(argv)), const_cast<char**>(argv),
                               &options, &error))
      << error;
  EXPECT_EQ(options.supervise, 4);
  EXPECT_EQ(options.task_timeout_ms, 5000);
  EXPECT_EQ(options.task_deadline_ms, 9000);
  EXPECT_EQ(options.task_retries, 5);
  EXPECT_EQ(options.heartbeat_ms, 100);
  EXPECT_EQ(options.heartbeat_timeout_ms, 900);
  EXPECT_EQ(options.worker_as_limit_mb, 512u);
  EXPECT_EQ(options.worker_rss_limit_mb, 256u);
  EXPECT_EQ(options.chaos_seed, 42u);
  EXPECT_DOUBLE_EQ(options.chaos_crash, 0.01);
  EXPECT_DOUBLE_EQ(options.chaos_exit, 0.5);
  EXPECT_DOUBLE_EQ(options.chaos_stall, 1.0);
  EXPECT_TRUE(options.chaos_enabled());

  // Out-of-range rates and worker counts are rejected with context.
  const char* bad_rate[] = {"bench", "--chaos-crash", "1.5"};
  BenchOptions rejected;
  EXPECT_FALSE(parse_bench_args(3, const_cast<char**>(bad_rate), &rejected, &error));
  EXPECT_NE(error.find("chaos-crash"), std::string::npos) << error;
  const char* bad_workers[] = {"bench", "--supervise", "0"};
  EXPECT_FALSE(parse_bench_args(3, const_cast<char**>(bad_workers), &rejected, &error));
  EXPECT_NE(error.find("supervise"), std::string::npos) << error;
}

}  // namespace
}  // namespace vafs::exp
