// Tests for the deterministic fault-injection subsystem: plan compilation
// (determinism, window shape), injector point queries, the bandwidth
// overlay, and full sessions degrading gracefully (and reproducibly)
// under every fault kind.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "core/session.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/bandwidth.h"
#include "simcore/rng.h"

namespace vafs::fault {
namespace {

FaultPlanConfig busy_config() {
  FaultPlanConfig config;
  config.outage_rate_per_min = 4.0;
  config.collapse_rate_per_min = 4.0;
  config.decode_spike_rate_per_min = 4.0;
  config.sysfs_fault_rate_per_min = 4.0;
  config.thermal_cap_rate_per_min = 4.0;
  return config;
}

// ------------------------------------------------------------------ plan

TEST(FaultPlan, DefaultConfigInjectsNothing) {
  EXPECT_FALSE(FaultPlanConfig{}.any());
  const FaultPlan plan(FaultPlanConfig{}, sim::Rng(1), sim::SimTime::seconds(600));
  EXPECT_EQ(plan.total_windows(), 0u);
}

TEST(FaultPlan, PresetsEnableInjection) {
  EXPECT_TRUE(FaultPlanConfig::mild().any());
  EXPECT_TRUE(FaultPlanConfig::harsh().any());
  // A per-fetch probability alone counts: it needs the injector wired in.
  FaultPlanConfig config;
  config.fetch_failure_prob = 0.01;
  EXPECT_TRUE(config.any());
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const auto horizon = sim::SimTime::seconds(600);
  const FaultPlan a(busy_config(), sim::Rng(42), horizon);
  const FaultPlan b(busy_config(), sim::Rng(42), horizon);
  ASSERT_GT(a.total_windows(), 0u);
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    const auto& wa = a.windows(kind);
    const auto& wb = b.windows(kind);
    ASSERT_EQ(wa.size(), wb.size()) << fault_kind_name(kind);
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].start, wb[i].start);
      EXPECT_EQ(wa[i].end, wb[i].end);
      EXPECT_EQ(wa[i].magnitude, wb[i].magnitude);
    }
  }
}

TEST(FaultPlan, DifferentSeedDifferentSchedule) {
  const auto horizon = sim::SimTime::seconds(600);
  const FaultPlan a(busy_config(), sim::Rng(42), horizon);
  const FaultPlan b(busy_config(), sim::Rng(43), horizon);
  bool differs = a.total_windows() != b.total_windows();
  if (!differs) {
    for (std::size_t k = 0; k < kFaultKindCount && !differs; ++k) {
      const auto kind = static_cast<FaultKind>(k);
      for (std::size_t i = 0; i < a.windows(kind).size() && !differs; ++i) {
        differs = a.windows(kind)[i].start != b.windows(kind)[i].start;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, WindowsSortedNonOverlappingWithinHorizon) {
  const auto horizon = sim::SimTime::seconds(600);
  const FaultPlan plan(FaultPlanConfig::harsh(), sim::Rng(7), horizon);
  EXPECT_GT(plan.total_windows(), 0u);
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    sim::SimTime prev_end = sim::SimTime::zero();
    for (const auto& w : plan.windows(kind)) {
      EXPECT_EQ(w.kind, kind);
      EXPECT_GE(w.start, prev_end) << fault_kind_name(kind);
      EXPECT_GT(w.end, w.start);
      EXPECT_LE(w.end, horizon);
      prev_end = w.end;
    }
  }
}

TEST(FaultPlan, RetuningOneKindLeavesOthersUnchanged) {
  // Per-kind forked substreams: doubling the outage rate must not move a
  // single decode-spike or sysfs window.
  FaultPlanConfig a = busy_config();
  FaultPlanConfig b = busy_config();
  b.outage_rate_per_min *= 2.0;
  const auto horizon = sim::SimTime::seconds(600);
  const FaultPlan pa(a, sim::Rng(9), horizon);
  const FaultPlan pb(b, sim::Rng(9), horizon);
  for (const auto kind :
       {FaultKind::kThroughputCollapse, FaultKind::kDecodeSpike, FaultKind::kSysfsWriteFault,
        FaultKind::kThermalCap}) {
    const auto& wa = pa.windows(kind);
    const auto& wb = pb.windows(kind);
    ASSERT_EQ(wa.size(), wb.size()) << fault_kind_name(kind);
    for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i].start, wb[i].start);
  }
  EXPECT_NE(pa.windows(FaultKind::kLinkOutage).size(), pb.windows(FaultKind::kLinkOutage).size());
}

TEST(FaultPlan, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kLinkOutage), "link-outage");
  EXPECT_STREQ(fault_kind_name(FaultKind::kThroughputCollapse), "throughput-collapse");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDecodeSpike), "decode-spike");
  EXPECT_STREQ(fault_kind_name(FaultKind::kSysfsWriteFault), "sysfs-write-fault");
  EXPECT_STREQ(fault_kind_name(FaultKind::kThermalCap), "thermal-cap");
}

// -------------------------------------------------------------- injector

TEST(FaultInjector, BandwidthScaleTracksWindows) {
  FaultPlanConfig config;
  config.outage_rate_per_min = 3.0;
  config.collapse_rate_per_min = 3.0;
  config.collapse_factor = 0.25;
  const FaultPlan plan(config, sim::Rng(5), sim::SimTime::seconds(600));
  FaultInjector injector(plan, sim::Rng(6));

  const auto& outages = injector.plan().windows(FaultKind::kLinkOutage);
  ASSERT_FALSE(outages.empty());
  for (const auto& w : outages) {
    const auto mid = w.start + (w.end - w.start) / 2;
    EXPECT_EQ(injector.bandwidth_scale(mid), 0.0);
    EXPECT_EQ(injector.bandwidth_scale(w.end), injector.bandwidth_scale(w.end));  // no crash
  }
  const auto& collapses = injector.plan().windows(FaultKind::kThroughputCollapse);
  ASSERT_FALSE(collapses.empty());
  for (const auto& w : collapses) {
    const auto mid = w.start + (w.end - w.start) / 2;
    const double scale = injector.bandwidth_scale(mid);
    // 0.25 unless an outage overlaps (outage wins).
    EXPECT_TRUE(scale == 0.25 || scale == 0.0) << scale;
  }
  // Outside every window the link is clean.
  EXPECT_EQ(injector.bandwidth_scale(sim::SimTime::zero()), 1.0);
}

TEST(FaultInjector, QueriesMayGoBackwards) {
  // The downloader integrates over [last_pump, now], so scale lookups are
  // not monotonic in time. Interleave past/future queries and check each
  // against a linear scan.
  FaultPlanConfig config;
  config.outage_rate_per_min = 6.0;
  const FaultPlan plan(config, sim::Rng(11), sim::SimTime::seconds(300));
  FaultInjector injector(plan, sim::Rng(12));
  const auto& outages = injector.plan().windows(FaultKind::kLinkOutage);
  ASSERT_FALSE(outages.empty());

  auto expected = [&](sim::SimTime t) {
    for (const auto& w : outages) {
      if (t >= w.start && t < w.end) return 0.0;
    }
    return 1.0;
  };
  sim::Rng probe(13);
  for (int i = 0; i < 500; ++i) {
    const auto t = sim::SimTime::micros(
        static_cast<std::int64_t>(probe.uniform(0.0, 300e6)));
    EXPECT_EQ(injector.bandwidth_scale(t), expected(t)) << t.as_micros();
  }
}

TEST(FaultInjector, NextBandwidthChangeIsNextBoundary) {
  FaultPlanConfig config;
  config.outage_rate_per_min = 3.0;
  const FaultPlan plan(config, sim::Rng(21), sim::SimTime::seconds(300));
  FaultInjector injector(plan, sim::Rng(22));
  const auto& outages = injector.plan().windows(FaultKind::kLinkOutage);
  ASSERT_FALSE(outages.empty());

  const auto& first = outages.front();
  EXPECT_EQ(injector.next_bandwidth_change(sim::SimTime::zero()), first.start);
  EXPECT_EQ(injector.next_bandwidth_change(first.start), first.end);
  // Past the final boundary there is nothing left to wake up for.
  EXPECT_EQ(injector.next_bandwidth_change(outages.back().end), sim::SimTime::max());
}

TEST(FaultInjector, DecodeScaleAtLeastOne) {
  FaultPlanConfig config;
  config.decode_spike_rate_per_min = 4.0;
  config.decode_spike_factor = 2.5;
  const FaultPlan plan(config, sim::Rng(31), sim::SimTime::seconds(300));
  FaultInjector injector(plan, sim::Rng(32));
  const auto& spikes = injector.plan().windows(FaultKind::kDecodeSpike);
  ASSERT_FALSE(spikes.empty());
  EXPECT_EQ(injector.decode_scale(sim::SimTime::zero()), 1.0);
  const auto& w = spikes.front();
  EXPECT_EQ(injector.decode_scale(w.start + (w.end - w.start) / 2), 2.5);
}

TEST(FaultInjector, SysfsErrorsOnlyInsideWindows) {
  FaultPlanConfig config;
  config.sysfs_fault_rate_per_min = 4.0;
  config.sysfs_einval_fraction = 1.0;  // every faulted window -> EINVAL
  const FaultPlan plan(config, sim::Rng(41), sim::SimTime::seconds(300));
  FaultInjector injector(plan, sim::Rng(42));
  const auto& windows = injector.plan().windows(FaultKind::kSysfsWriteFault);
  ASSERT_FALSE(windows.empty());

  EXPECT_EQ(injector.sysfs_write_error(sim::SimTime::zero()), std::nullopt);
  const auto& w = windows.front();
  const auto err = injector.sysfs_write_error(w.start + (w.end - w.start) / 2);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, sysfs::Errno::kInval);
  EXPECT_EQ(injector.injected_sysfs_errors(), 1u);
}

TEST(FaultInjector, FetchFatesFollowProbabilities) {
  FaultPlanConfig config;
  config.fetch_failure_prob = 0.25;
  config.fetch_hang_prob = 0.25;
  const FaultPlan plan(config, sim::Rng(51), sim::SimTime::seconds(300));
  FaultInjector injector(plan, sim::Rng(52));
  int fails = 0;
  int hangs = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    sim::SimTime delay;
    const auto fate = injector.fetch_attempt_fate(sim::SimTime::zero(),
                                                  static_cast<std::uint64_t>(i + 1), 1, &delay);
    if (fate == net::FetchFate::kFail) {
      ++fails;
      EXPECT_GT(delay, sim::SimTime::zero());
    } else if (fate == net::FetchFate::kHang) {
      ++hangs;
    }
  }
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.25, 0.05);
  EXPECT_NEAR(static_cast<double>(hangs) / n, 0.25, 0.05);
  EXPECT_EQ(injector.injected_fetch_failures(), static_cast<std::uint64_t>(fails));
  EXPECT_EQ(injector.injected_fetch_hangs(), static_cast<std::uint64_t>(hangs));
}

TEST(FaultInjector, FetchFatesAreOrderInvariant) {
  // The fate of (fetch, attempt) must be a pure function of the ids: an
  // injector queried in a completely different order — which is what a
  // moved shard boundary amounts to — reports identical fates and delays.
  FaultPlanConfig config;
  config.fetch_failure_prob = 0.3;
  config.fetch_hang_prob = 0.2;
  const FaultPlan plan(config, sim::Rng(71), sim::SimTime::seconds(300));
  FaultInjector forward(plan, sim::Rng(72));
  FaultInjector backward(plan, sim::Rng(72));

  using Key = std::pair<std::uint64_t, unsigned>;
  std::map<Key, std::pair<net::FetchFate, sim::SimTime>> expected;
  int fails = 0;
  int hangs = 0;
  for (std::uint64_t id = 1; id <= 40; ++id) {
    for (unsigned attempt = 1; attempt <= 3; ++attempt) {
      sim::SimTime delay;
      const auto fate = forward.fetch_attempt_fate(sim::SimTime::zero(), id, attempt, &delay);
      expected[{id, attempt}] = {fate, delay};
      fails += fate == net::FetchFate::kFail;
      hangs += fate == net::FetchFate::kHang;
    }
  }
  ASSERT_GT(fails, 0);  // the invariance claim must cover nontrivial fates
  ASSERT_GT(hangs, 0);

  for (std::uint64_t id = 40; id >= 1; --id) {
    for (unsigned attempt = 3; attempt >= 1; --attempt) {
      sim::SimTime delay;
      const auto fate = backward.fetch_attempt_fate(sim::SimTime::zero(), id, attempt, &delay);
      const auto& [want_fate, want_delay] = expected[{id, attempt}];
      EXPECT_EQ(fate, want_fate) << "fetch " << id << " attempt " << attempt;
      EXPECT_EQ(delay, want_delay) << "fetch " << id << " attempt " << attempt;
    }
  }
  EXPECT_EQ(backward.injected_fetch_failures(), forward.injected_fetch_failures());
  EXPECT_EQ(backward.injected_fetch_hangs(), forward.injected_fetch_hangs());
}

TEST(FaultyBandwidth, AppliesOverlayWithoutTouchingBase) {
  FaultPlanConfig config;
  config.outage_rate_per_min = 3.0;
  const FaultPlan plan(config, sim::Rng(61), sim::SimTime::seconds(300));
  FaultInjector injector(plan, sim::Rng(62));
  net::ConstantBandwidth base(10.0);
  FaultyBandwidth faulty(base, injector);

  const auto& outages = injector.plan().windows(FaultKind::kLinkOutage);
  ASSERT_FALSE(outages.empty());
  const auto& w = outages.front();
  EXPECT_EQ(faulty.current_mbps(sim::SimTime::zero()), 10.0);
  EXPECT_EQ(faulty.current_mbps(w.start + (w.end - w.start) / 2), 0.0);
  EXPECT_EQ(faulty.current_mbps(w.end), 10.0);
  // next_change fuses the base (never changes) with the window boundaries.
  EXPECT_EQ(faulty.next_change(sim::SimTime::zero()), w.start);
}

// -------------------------------------------------------------- sessions

core::SessionConfig chaos_session(const std::string& governor, std::uint64_t seed) {
  core::SessionConfig config;
  config.governor = governor;
  config.media_duration = sim::SimTime::seconds(60);
  config.fault = FaultPlanConfig::harsh();
  config.downloader.attempt_timeout = sim::SimTime::seconds(6);
  config.downloader.max_attempts = 4;
  config.vafs.watchdog.enabled = true;
  config.seed = seed;
  return config;
}

TEST(FaultSession, ChaosRunsAreDeterministic) {
  const auto a = core::run_session(chaos_session("vafs", 404));
  const auto b = core::run_session(chaos_session("vafs", 404));
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.energy.total_mj(), b.energy.total_mj());
  EXPECT_EQ(a.qoe.rebuffer_time, b.qoe.rebuffer_time);
  EXPECT_EQ(a.qoe.fetch_retries, b.qoe.fetch_retries);
  EXPECT_EQ(a.vafs_fallback_time, b.vafs_fallback_time);
  EXPECT_EQ(a.fault_windows, b.fault_windows);
  EXPECT_GT(a.fault_windows, 0u);
}

TEST(FaultSession, CleanConfigBuildsNoFaultLayer) {
  core::SessionConfig config;
  config.media_duration = sim::SimTime::seconds(30);
  bool saw_injector = true;
  core::SessionHooks hooks;
  hooks.on_ready = [&](core::SessionLive& live) { saw_injector = live.faults != nullptr; };
  const auto result = core::run_session(config, hooks);
  EXPECT_TRUE(result.finished);
  EXPECT_FALSE(saw_injector);
  EXPECT_EQ(result.fault_windows, 0u);
}

TEST(FaultSession, VafsSurvivesSysfsFaultsWithFallback) {
  // Dense sysfs faults + watchdog: the controller must fail over (at
  // least once), keep the session alive, and re-engage (fallback time
  // strictly below the wall clock).
  core::SessionConfig config;
  config.governor = "vafs";
  config.media_duration = sim::SimTime::seconds(90);
  // Poor network + this seed puts several frequency changes inside fault
  // windows (steady-state plans dedup to no writes, so a quiet seed never
  // exercises the knob at all — everything here is seed-deterministic).
  config.net = core::NetProfile::kPoor;
  config.seed = 3;
  config.fault.sysfs_fault_rate_per_min = 6.0;
  config.fault.sysfs_fault_mean_duration = sim::SimTime::seconds(5);
  config.vafs.watchdog.enabled = true;
  config.vafs.watchdog.write_error_threshold = 2;
  const auto result = core::run_session(config);
  EXPECT_TRUE(result.finished);
  EXPECT_GT(result.vafs_fallback_entries, 0u);
  EXPECT_GT(result.vafs_sysfs_write_errors, 0u);
  EXPECT_GT(result.vafs_fallback_time, sim::SimTime::zero());
  EXPECT_LT(result.vafs_fallback_time, result.wall);
}

TEST(FaultSession, OutagesStallButFinish) {
  core::SessionConfig config;
  config.governor = "ondemand";
  config.media_duration = sim::SimTime::seconds(60);
  config.net = core::NetProfile::kConstant;
  config.constant_mbps = 8.0;
  config.fault.outage_rate_per_min = 4.0;
  config.fault.outage_mean_duration = sim::SimTime::seconds(3);
  config.downloader.attempt_timeout = sim::SimTime::seconds(5);
  config.downloader.max_attempts = 10;
  const auto result = core::run_session(config);
  EXPECT_TRUE(result.finished);
  EXPECT_GT(result.fault_windows, 0u);
  // The same session without faults rebuffers strictly less (or equal).
  core::SessionConfig clean = config;
  clean.fault = FaultPlanConfig{};
  const auto base = core::run_session(clean);
  EXPECT_GE(result.qoe.rebuffer_time, base.qoe.rebuffer_time);
  EXPECT_GE(result.wall, base.wall);
}

TEST(FaultSession, ThermalCapWritesScalingMaxFreq) {
  core::SessionConfig config;
  config.governor = "performance";  // pinned at fmax: any cap is visible
  config.media_duration = sim::SimTime::seconds(60);
  config.fault.thermal_cap_rate_per_min = 6.0;
  config.fault.thermal_cap_fraction = 0.5;
  config.fault.thermal_cap_mean_duration = sim::SimTime::seconds(5);
  const auto result = core::run_session(config);
  EXPECT_TRUE(result.finished);
  EXPECT_GT(result.fault_windows, 0u);
  // performance normally never leaves fmax; with caps it must have spent
  // time at or below the capped OPP.
  double below_max = 0.0;
  for (const auto& [khz, frac] : result.residency) {
    if (khz < 2'100'000u) below_max += frac;
  }
  EXPECT_GT(below_max, 0.0);
  EXPECT_GT(result.freq_transitions, 0u);
}

TEST(FaultSession, FaultFreeResultsUnchangedByFaultCodePath) {
  // A zero-rate config must not change a session at all (the layer is
  // skipped, no extra RNG draws).
  core::SessionConfig clean;
  clean.media_duration = sim::SimTime::seconds(30);
  clean.governor = "vafs";
  const auto a = core::run_session(clean);
  core::SessionConfig again = clean;
  again.fault = FaultPlanConfig{};  // still all-zero
  const auto b = core::run_session(again);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.energy.total_mj(), b.energy.total_mj());
  EXPECT_EQ(a.vafs_setspeed_writes, b.vafs_setspeed_writes);
}

}  // namespace
}  // namespace vafs::fault
