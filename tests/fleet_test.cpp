// Tests for the fleet-scale sharded runner (src/fleet), organized around
// its one correctness claim: any interleaving, any kill point, same
// answer. The differential tests pin a sharded run — across job counts,
// shard sizes and kill/resume cycles — bit-for-bit against a serial
// exp::run_grid reference (aggregate state bits AND the trace-digest
// chain, so even a single reordered RNG draw anywhere in the stack shows
// up). The property tests cover the pieces that claim rests on: shard
// plans partition the task order exactly, checkpoint manifests round-trip
// bit-exactly and reject truncation/corruption, and Aggregate::merge is an
// abelian-monoid fold (identity exact; commutative/associative up to FP
// rounding).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "exp/grid.h"
#include "exp/runner.h"
#include "fault/plan.h"
#include "fleet/checkpoint.h"
#include "fleet/fleet_runner.h"
#include "fleet/io.h"
#include "fleet/shard_plan.h"
#include "fleet/spool.h"
#include "obs/trace.h"
#include "simcore/rng.h"

namespace vafs::fleet {
namespace {

using namespace std::string_literals;
namespace fs = std::filesystem;

/// A fresh, empty scratch directory per test.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("vafs_fleet_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

core::SessionConfig small_config() {
  core::SessionConfig config;
  config.media_duration = sim::SimTime::seconds(20);
  config.net = core::NetProfile::kFair;
  config.fixed_rep = 2;
  return config;
}

std::vector<exp::ScenarioSpec> small_grid() {
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  return grid.scenarios();
}

/// A grid whose sessions retry and hang: every fetch fate and backoff
/// jitter draw in the stack gets exercised, and all of it lands in the
/// per-session digests (fetch begin/attempt/end events).
std::vector<exp::ScenarioSpec> faulted_grid() {
  core::SessionConfig base = small_config();
  base.fault.fetch_failure_prob = 0.15;
  base.fault.fetch_hang_prob = 0.05;
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;
  exp::ExperimentGrid grid(base);
  grid.governors({"ondemand", "vafs"});
  return grid.scenarios();
}

const std::vector<std::uint64_t> kSeeds = {101, 202, 303, 404, 505};

/// Serial ground truth: run_grid at jobs=1 with digest tracers, plus the
/// digest chain folded in canonical task order (scenario-major, seed
/// fastest — the same order every shard plan replays).
struct Reference {
  std::vector<exp::Aggregate> aggs;
  std::uint64_t chain = 0;
};

Reference serial_reference(const std::vector<exp::ScenarioSpec>& scenarios,
                           const std::vector<std::uint64_t>& seeds) {
  exp::RunOptions opts;
  opts.jobs = 1;
  opts.seeds = seeds;
  opts.trace = true;
  const exp::ResultSet rs = exp::run_grid(scenarios, opts);
  Reference ref;
  for (const exp::ScenarioResult& sr : rs.all()) {
    ref.aggs.push_back(sr.agg);
    for (const core::SessionResult& run : sr.runs) {
      ref.chain = obs::chain_digest(ref.chain, run.trace_digest);
    }
  }
  return ref;
}

/// Bitwise aggregate equality: every metric's full Welford state compared
/// as raw IEEE-754 bit patterns — "close enough" is a failure here.
void expect_agg_bits(const exp::Aggregate& a, const exp::Aggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.all_finished, b.all_finished);
  for (const auto& m : exp::Aggregate::metrics()) {
    const sim::OnlineStats::State sa = (a.*m.member).state();
    const sim::OnlineStats::State sb = (b.*m.member).state();
    EXPECT_EQ(sa.n, sb.n) << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.mean), std::bit_cast<std::uint64_t>(sb.mean))
        << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.m2), std::bit_cast<std::uint64_t>(sb.m2))
        << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.min), std::bit_cast<std::uint64_t>(sb.min))
        << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.max), std::bit_cast<std::uint64_t>(sb.max))
        << m.name;
  }
}

void expect_matches_reference(const FleetResult& result, const Reference& ref) {
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.digest_chain, ref.chain);
  ASSERT_EQ(result.scenarios.size(), ref.aggs.size());
  for (std::size_t s = 0; s < ref.aggs.size(); ++s) {
    expect_agg_bits(result.scenarios[s].agg, ref.aggs[s]);
  }
}

FleetOptions checkpointed_opts(const fs::path& dir, std::size_t shard_size) {
  FleetOptions opts;
  opts.jobs = 4;
  opts.seeds = kSeeds;
  opts.shard_size = shard_size;
  opts.checkpoint_dir = dir.string();
  opts.checkpoint_every_shards = 1;
  opts.spool.format = SpoolFormat::kCsv;
  return opts;
}

// ------------------------------------------------------------ shard plan

TEST(ShardPlan, ShardsPartitionTheTaskOrderExactly) {
  const std::tuple<std::size_t, std::size_t, std::size_t> cases[] = {
      {3, 5, 4}, {1, 1, 64}, {2, 7, 1}, {4, 4, 16}, {5, 3, 7}};
  for (const auto& [scenarios, seeds, shard] : cases) {
    const ShardPlan plan(scenarios, seeds, shard);
    EXPECT_EQ(plan.task_count(), scenarios * seeds);
    EXPECT_EQ(plan.shard_count(), (plan.task_count() + shard - 1) / shard);
    std::size_t covered = 0;
    for (std::size_t id = 0; id < plan.shard_count(); ++id) {
      const Shard sh = plan.shard(id);
      EXPECT_EQ(sh.id, id);
      EXPECT_EQ(sh.first_task, covered);
      EXPECT_GE(sh.task_count, 1u);
      EXPECT_LE(sh.task_count, shard);
      covered += sh.task_count;
    }
    EXPECT_EQ(covered, plan.task_count());
    // Canonical coordinates: scenario-major, seed fastest.
    for (std::size_t t = 0; t < plan.task_count(); ++t) {
      const TaskRef ref = plan.task(t);
      EXPECT_EQ(ref.scenario, t / seeds);
      EXPECT_EQ(ref.seed_index, t % seeds);
    }
  }
}

TEST(ShardPlan, FingerprintCoversGridSeedsAndLayout) {
  const auto scenarios = small_grid();
  const std::uint64_t base = grid_fingerprint(scenarios, kSeeds, 64);
  EXPECT_EQ(grid_fingerprint(scenarios, kSeeds, 64), base);  // deterministic

  EXPECT_NE(grid_fingerprint(scenarios, kSeeds, 32), base);  // shard layout
  std::vector<std::uint64_t> other_seeds = kSeeds;
  other_seeds.back() = 506;
  EXPECT_NE(grid_fingerprint(scenarios, other_seeds, 64), base);  // seed list
  auto reordered = scenarios;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(grid_fingerprint(reordered, kSeeds, 64), base);  // scenario order
}

// ---------------------------------------------------------- differential

TEST(FleetDifferential, MatchesSerialRunGridAcrossJobsAndShardSizes) {
  const auto scenarios = small_grid();
  const Reference ref = serial_reference(scenarios, kSeeds);
  ASSERT_NE(ref.chain, 0u);

  for (const int jobs : {1, 4, 16}) {
    for (const std::size_t shard_size : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      FleetOptions opts;
      opts.jobs = jobs;
      opts.seeds = kSeeds;
      opts.shard_size = shard_size;
      const FleetResult result = run_fleet(scenarios, opts);
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " shard_size=" + std::to_string(shard_size));
      expect_matches_reference(result, ref);
      EXPECT_EQ(result.sessions_run, scenarios.size() * kSeeds.size());
      EXPECT_EQ(result.sessions_resumed, 0u);
      EXPECT_TRUE(result.failures.empty());
    }
  }
}

TEST(FleetDifferential, ShardBoundaryAcrossFaultedSegmentsIsInvariant) {
  // The RNG-keying regression test at system level: fetch fates and retry
  // backoff jitter are keyed per (session, segment, attempt), so moving a
  // shard boundary across a faulted segment must not change a single
  // FetchResult — and since every fetch begin/attempt/end event is in the
  // per-session digest, any divergence breaks the chain.
  const auto scenarios = faulted_grid();
  const Reference ref = serial_reference(scenarios, kSeeds);

  // The grid actually faults: retries happened somewhere.
  double total_retries = 0.0;
  for (const auto& agg : ref.aggs) total_retries += agg.fetch_retries.sum();
  ASSERT_GT(total_retries, 0.0);

  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    FleetOptions opts;
    opts.jobs = 4;
    opts.seeds = kSeeds;
    opts.shard_size = shard_size;
    SCOPED_TRACE("shard_size=" + std::to_string(shard_size));
    expect_matches_reference(run_fleet(scenarios, opts), ref);
  }
}

TEST(FleetDifferential, PopulationMixSweepIsInvariantAcrossJobsShardsAndResume) {
  // A >=4-profile weighted device population on the seed axis: each
  // session's device is a pure hash of its seed, so no shard boundary,
  // job count or kill/resume point may move a session onto a different
  // device. Any misdraw changes that session's whole event stream and
  // breaks the digest chain.
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"})
      .population(device::PopulationMix::named("global"));
  const auto scenarios = grid.scenarios();
  ASSERT_NE(scenarios[0].label("mix"), nullptr);
  EXPECT_EQ(*scenarios[0].label("mix"), "global");

  const Reference ref = serial_reference(scenarios, kSeeds);
  ASSERT_NE(ref.chain, 0u);

  // The mix actually scatters devices: multi-cluster draws show up as
  // little-cluster energy on some sessions but not all.
  {
    exp::RunOptions opts;
    opts.jobs = 1;
    opts.seeds = kSeeds;
    const exp::ResultSet rs = exp::run_grid(scenarios, opts);
    std::size_t multi = 0, single = 0, named = 0;
    for (const auto& sr : rs.all()) {
      for (const auto& run : sr.runs) {
        (run.clusters.size() > 1 ? multi : single) += 1;
        named += run.device.empty() ? 0 : 1;
      }
    }
    EXPECT_GT(multi, 0u);
    EXPECT_GT(single, 0u);
    EXPECT_EQ(named, scenarios.size() * kSeeds.size());
  }

  for (const int jobs : {1, 4}) {
    for (const std::size_t shard_size : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
      FleetOptions opts;
      opts.jobs = jobs;
      opts.seeds = kSeeds;
      opts.shard_size = shard_size;
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " shard_size=" + std::to_string(shard_size));
      expect_matches_reference(run_fleet(scenarios, opts), ref);
    }
  }

  // Kill mid-grid and resume: the finished run is still chain-identical.
  const fs::path dir = fresh_dir("mix_resume");
  FleetOptions opts = checkpointed_opts(dir, 2);
  opts.on_progress = [](std::uint64_t done, std::uint64_t) { return done < 2; };
  const FleetResult killed = run_fleet(scenarios, opts);
  ASSERT_TRUE(killed.ok()) << killed.error;
  ASSERT_TRUE(killed.stopped);
  FleetOptions resume = checkpointed_opts(dir, 2);
  resume.resume = true;
  expect_matches_reference(run_fleet(scenarios, resume), ref);
}

TEST(FleetDifferential, MixIdentityChangesTheCheckpointFingerprint) {
  // A checkpoint written under one mix must not resume a run of another:
  // the mix id rides in every scenario id, which the shard-plan
  // fingerprint covers.
  exp::ExperimentGrid global_grid(small_config());
  global_grid.governors({"ondemand"}).population(device::PopulationMix::named("global"));
  exp::ExperimentGrid premium_grid(small_config());
  premium_grid.governors({"ondemand"}).population(device::PopulationMix::named("premium"));
  EXPECT_NE(grid_fingerprint(global_grid.scenarios(), kSeeds, 2),
            grid_fingerprint(premium_grid.scenarios(), kSeeds, 2));
}

TEST(FleetDifferential, EmptyGridCompletesTrivially) {
  const FleetResult result = run_fleet(std::vector<exp::ScenarioSpec>{}, FleetOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.shard_count, 0u);
  EXPECT_EQ(result.digest_chain, 0u);
}

// ----------------------------------------------------------- kill/resume

TEST(FleetResume, KilledAtEveryShardBoundaryResumesBitIdentically) {
  const auto scenarios = small_grid();
  const Reference ref = serial_reference(scenarios, kSeeds);

  // Uninterrupted run with a spool: the byte-level reference for resume.
  const fs::path ref_dir = fresh_dir("resume_ref");
  const FleetResult whole = run_fleet(scenarios, checkpointed_opts(ref_dir, 1));
  expect_matches_reference(whole, ref);
  const std::string ref_spool = slurp(ref_dir / "spool.csv");
  ASSERT_FALSE(ref_spool.empty());

  const std::size_t shard_count = whole.shard_count;
  ASSERT_EQ(shard_count, scenarios.size() * kSeeds.size());  // shard_size 1

  for (const std::size_t kill_at : {std::size_t{1}, std::size_t{4}, shard_count - 1}) {
    const fs::path dir = fresh_dir("resume_kill_" + std::to_string(kill_at));
    FleetOptions opts = checkpointed_opts(dir, 1);
    opts.on_progress = [kill_at](std::uint64_t done, std::uint64_t) { return done < kill_at; };
    const FleetResult killed = run_fleet(scenarios, opts);
    ASSERT_TRUE(killed.ok()) << killed.error;
    ASSERT_TRUE(killed.stopped);
    ASSERT_EQ(killed.shards_done, kill_at);

    FleetOptions resume = checkpointed_opts(dir, 1);
    resume.resume = true;
    const FleetResult resumed = run_fleet(scenarios, resume);
    SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
    expect_matches_reference(resumed, ref);
    EXPECT_EQ(resumed.sessions_resumed, kill_at);
    EXPECT_EQ(resumed.sessions_run, shard_count - kill_at);
    // The spool is byte-identical to the uninterrupted run's.
    EXPECT_EQ(slurp(dir / "spool.csv"), ref_spool);
  }
}

TEST(FleetResume, SurvivesRepeatedKillsAndResumeAfterCompletion) {
  const auto scenarios = small_grid();
  const Reference ref = serial_reference(scenarios, kSeeds);
  const fs::path dir = fresh_dir("double_kill");

  FleetOptions first = checkpointed_opts(dir, 1);
  first.on_progress = [](std::uint64_t done, std::uint64_t) { return done < 2; };
  ASSERT_TRUE(run_fleet(scenarios, first).stopped);

  FleetOptions second = checkpointed_opts(dir, 1);
  second.resume = true;
  second.on_progress = [](std::uint64_t done, std::uint64_t) { return done < 7; };
  const FleetResult mid = run_fleet(scenarios, second);
  ASSERT_TRUE(mid.stopped);
  ASSERT_EQ(mid.shards_done, 7u);
  ASSERT_EQ(mid.sessions_resumed, 2u);

  FleetOptions third = checkpointed_opts(dir, 1);
  third.resume = true;
  expect_matches_reference(run_fleet(scenarios, third), ref);

  // Resuming a finished run re-runs nothing and returns the same answer.
  FleetOptions again = checkpointed_opts(dir, 1);
  again.resume = true;
  const FleetResult noop = run_fleet(scenarios, again);
  expect_matches_reference(noop, ref);
  EXPECT_EQ(noop.sessions_run, 0u);
  EXPECT_EQ(noop.sessions_resumed, scenarios.size() * kSeeds.size());
}

TEST(FleetResume, MissingManifestIsAFreshStart) {
  // A kill can land before the first checkpoint ever hits disk; --resume
  // must treat the empty directory as "start over", not an error.
  const auto scenarios = small_grid();
  const fs::path dir = fresh_dir("fresh_start");
  FleetOptions opts = checkpointed_opts(dir, 4);
  opts.resume = true;
  const FleetResult result = run_fleet(scenarios, opts);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.sessions_resumed, 0u);
}

TEST(FleetResume, RefusesAManifestFromADifferentGrid) {
  const auto scenarios = small_grid();
  const fs::path dir = fresh_dir("fingerprint");
  FleetOptions opts = checkpointed_opts(dir, 1);
  opts.on_progress = [](std::uint64_t done, std::uint64_t) { return done < 3; };
  ASSERT_TRUE(run_fleet(scenarios, opts).stopped);

  FleetOptions other = checkpointed_opts(dir, 1);
  other.resume = true;
  other.seeds = {999, 998};  // different grid meaning
  const FleetResult refused = run_fleet(scenarios, other);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.error.find("fingerprint"), std::string::npos) << refused.error;
}

TEST(FleetResume, RefusesACorruptManifest) {
  const auto scenarios = small_grid();
  const fs::path dir = fresh_dir("corrupt_resume");
  FleetOptions opts = checkpointed_opts(dir, 1);
  opts.on_progress = [](std::uint64_t done, std::uint64_t) { return done < 3; };
  ASSERT_TRUE(run_fleet(scenarios, opts).stopped);

  // Flip one byte in the middle of the manifest.
  const fs::path manifest = dir / "manifest.ckpt";
  std::string bytes = slurp(manifest);
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream(manifest, std::ios::binary | std::ios::trunc) << bytes;

  FleetOptions resume = checkpointed_opts(dir, 1);
  resume.resume = true;
  const FleetResult refused = run_fleet(scenarios, resume);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.error.find("corrupt"), std::string::npos) << refused.error;
}

// ------------------------------------------------- checkpoint round trip

/// A checkpoint state full of adversarial doubles: raw random bit patterns
/// (hitting -0.0, denormals, infinities and NaNs) and messages with every
/// awkward byte. The manifest must reproduce all of it bit-for-bit.
CheckpointState random_state(sim::Rng& rng) {
  CheckpointState cs;
  cs.fingerprint = rng.next_u64();
  cs.shards_done = rng.next_u64() % 1000;
  cs.tasks_done = cs.shards_done * 64;
  cs.digest_chain = rng.next_u64();
  cs.spool_offset = rng.next_u64() % (1ull << 40);
  cs.aggregates.resize(1 + rng.next_u64() % 4);
  for (exp::Aggregate& agg : cs.aggregates) {
    agg.runs = static_cast<int>(rng.next_u64() % 100);
    agg.all_finished = (rng.next_u64() & 1) != 0;
    for (const auto& m : exp::Aggregate::metrics()) {
      sim::OnlineStats::State st;
      st.n = rng.next_u64() % 1000;
      st.mean = std::bit_cast<double>(rng.next_u64());
      st.m2 = std::bit_cast<double>(rng.next_u64());
      st.min = std::bit_cast<double>(rng.next_u64());
      st.max = std::bit_cast<double>(rng.next_u64());
      agg.*m.member = sim::OnlineStats::from_state(st);
    }
  }
  cs.failures.push_back(
      CheckpointFailure{rng.next_u64(), rng.next_u64(),
                        "scenario 'x y' seed 7: \"quoted\"\nmulti line\tand null \0 byte"s});
  cs.failures.push_back(CheckpointFailure{1, 2, ""});  // empty message
  cs.quarantine_offset = rng.next_u64() % (1ull << 30);
  CheckpointQuarantine q;
  q.task_index = rng.next_u64();
  q.seed = rng.next_u64();
  q.attempts = 3;
  q.fates = "crash:SIGSEGV,hang:heartbeat-miss,exit:41";
  q.stderr_tail = "chaos: task 7 attempt 2 fate exit\nwith \0 and \"quotes\""s;
  q.last_trace_events = rng.next_u64();
  q.last_trace_digest = rng.next_u64();
  cs.quarantined.push_back(q);
  cs.quarantined.push_back(CheckpointQuarantine{});  // all-empty record
  return cs;
}

void expect_state_bits(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.shards_done, b.shards_done);
  EXPECT_EQ(a.tasks_done, b.tasks_done);
  EXPECT_EQ(a.digest_chain, b.digest_chain);
  EXPECT_EQ(a.spool_offset, b.spool_offset);
  ASSERT_EQ(a.aggregates.size(), b.aggregates.size());
  for (std::size_t i = 0; i < a.aggregates.size(); ++i) {
    expect_agg_bits(a.aggregates[i], b.aggregates[i]);
  }
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].task_index, b.failures[i].task_index);
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].message, b.failures[i].message);
  }
  EXPECT_EQ(a.quarantine_offset, b.quarantine_offset);
  ASSERT_EQ(a.quarantined.size(), b.quarantined.size());
  for (std::size_t i = 0; i < a.quarantined.size(); ++i) {
    EXPECT_EQ(a.quarantined[i].task_index, b.quarantined[i].task_index);
    EXPECT_EQ(a.quarantined[i].seed, b.quarantined[i].seed);
    EXPECT_EQ(a.quarantined[i].attempts, b.quarantined[i].attempts);
    EXPECT_EQ(a.quarantined[i].fates, b.quarantined[i].fates);
    EXPECT_EQ(a.quarantined[i].stderr_tail, b.quarantined[i].stderr_tail);
    EXPECT_EQ(a.quarantined[i].last_trace_events, b.quarantined[i].last_trace_events);
    EXPECT_EQ(a.quarantined[i].last_trace_digest, b.quarantined[i].last_trace_digest);
  }
}

TEST(Checkpoint, RoundTripIsBitExactForAdversarialDoubles) {
  const fs::path dir = fresh_dir("roundtrip");
  sim::Rng rng(0xF1EE7);
  for (int iter = 0; iter < 20; ++iter) {
    const CheckpointState original = random_state(rng);
    const std::string path = (dir / "manifest.ckpt").string();
    std::string error;
    ASSERT_TRUE(write_checkpoint(path, original, &error)) << error;
    CheckpointState loaded;
    ASSERT_TRUE(read_checkpoint(path, &loaded, &error)) << error;
    expect_state_bits(original, loaded);

    // Special values explicitly, on top of the random sweep.
    CheckpointState special = original;
    sim::OnlineStats::State st;
    st.n = 3;
    st.mean = -0.0;
    st.m2 = 5e-324;  // smallest denormal
    st.min = -std::numeric_limits<double>::infinity();
    st.max = std::numeric_limits<double>::max();
    special.aggregates[0].cpu_mj = sim::OnlineStats::from_state(st);
    ASSERT_TRUE(write_checkpoint(path, special, &error)) << error;
    ASSERT_TRUE(read_checkpoint(path, &loaded, &error)) << error;
    expect_state_bits(special, loaded);
  }
}

TEST(Checkpoint, RejectsTruncationCorruptionAndTrailingGarbage) {
  const fs::path dir = fresh_dir("reject");
  sim::Rng rng(0xBAD);
  const CheckpointState state = random_state(rng);
  const fs::path path = dir / "manifest.ckpt";
  std::string error;
  ASSERT_TRUE(write_checkpoint(path.string(), state, &error)) << error;
  const std::string good = slurp(path);

  const auto rejects = [&](const std::string& bytes, const char* needle) {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
    CheckpointState loaded;
    std::string why;
    EXPECT_FALSE(read_checkpoint(path.string(), &loaded, &why));
    EXPECT_NE(why.find(needle), std::string::npos) << "got: " << why;
  };

  // Truncation at many points: empty, mid-file, one byte short.
  rejects("", "truncated");
  rejects(good.substr(0, good.size() / 3), "truncated");
  rejects(good.substr(0, good.size() - 1), "truncated");
  rejects(good.substr(0, good.size() - 18), "truncated");  // inside the end line

  // Single-bit corruption anywhere fails the checksum.
  for (const std::size_t at : {std::size_t{0}, good.size() / 2, good.size() - 3}) {
    std::string flipped = good;
    flipped[at] ^= 0x10;
    rejects(flipped, at == good.size() - 3 ? "truncated" : "corrupt");
  }

  // Bytes appended after the end line are not silently ignored.
  rejects(good + "extra line\n", "truncated");

  // A wrong schema number (with its checksum "fixed" by rewriting the
  // whole file through the writer) still reads back — so corrupt the
  // schema digit in place instead: the checksum catches it.
  std::string reschema = good;
  const std::size_t schema_at = reschema.find("checkpoint 2") + std::string("checkpoint ").size();
  reschema[schema_at] = '9';
  rejects(reschema, "corrupt");

  // The pristine bytes still parse after all that.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << good;
  CheckpointState loaded;
  ASSERT_TRUE(read_checkpoint(path.string(), &loaded, &error)) << error;
}

// ------------------------------------------------------- merge algebra

std::vector<core::SessionResult> sample_results() {
  std::vector<core::SessionResult> results;
  for (const char* governor : {"ondemand", "vafs"}) {
    core::SessionConfig config = small_config();
    config.governor = governor;
    for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
      config.seed = seed;
      results.push_back(core::run_session(config));
    }
  }
  return results;
}

exp::Aggregate fold(const std::vector<core::SessionResult>& results,
                    const std::vector<std::size_t>& order) {
  exp::Aggregate agg;
  for (const std::size_t i : order) agg.add(results[i]);
  return agg;
}

void expect_agg_near(const exp::Aggregate& a, const exp::Aggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  for (const auto& m : exp::Aggregate::metrics()) {
    const sim::OnlineStats& x = a.*m.member;
    const sim::OnlineStats& y = b.*m.member;
    // Count, min and max are order-exact; mean and variance merge via
    // Chan's formula, exact only up to FP rounding.
    EXPECT_EQ(x.count(), y.count()) << m.name;
    EXPECT_EQ(x.min(), y.min()) << m.name;
    EXPECT_EQ(x.max(), y.max()) << m.name;
    EXPECT_NEAR(x.mean(), y.mean(), 1e-9 * (1.0 + std::abs(y.mean()))) << m.name;
    EXPECT_NEAR(x.stddev(), y.stddev(), 1e-6 * (1.0 + y.stddev())) << m.name;
  }
}

TEST(AggregateAlgebra, EmptyAggregateIsAnExactIdentity) {
  const auto results = sample_results();
  std::vector<std::size_t> all(results.size());
  std::iota(all.begin(), all.end(), 0u);
  const exp::Aggregate reference = fold(results, all);

  exp::Aggregate left_identity;  // empty.merge(a) == a, bit for bit
  left_identity.merge(reference);
  expect_agg_bits(left_identity, reference);

  exp::Aggregate right_identity = reference;  // a.merge(empty) == a
  right_identity.merge(exp::Aggregate{});
  expect_agg_bits(right_identity, reference);
}

TEST(AggregateAlgebra, MergeIsCommutativeAndAssociativeUpToRounding) {
  const auto results = sample_results();
  sim::Rng rng(0xA16EB7A);

  for (int iter = 0; iter < 25; ++iter) {
    // Random 3-way partition of the sample set.
    std::vector<std::vector<std::size_t>> parts(3);
    for (std::size_t i = 0; i < results.size(); ++i) {
      parts[rng.next_u64() % 3].push_back(i);
    }
    const exp::Aggregate a = fold(results, parts[0]);
    const exp::Aggregate b = fold(results, parts[1]);
    const exp::Aggregate c = fold(results, parts[2]);

    exp::Aggregate ab = a;
    ab.merge(b);
    exp::Aggregate ba = b;
    ba.merge(a);
    expect_agg_near(ab, ba);  // commutative

    exp::Aggregate ab_c = ab;
    ab_c.merge(c);
    exp::Aggregate bc = b;
    bc.merge(c);
    exp::Aggregate a_bc = a;
    a_bc.merge(bc);
    expect_agg_near(ab_c, a_bc);  // associative

    // And any partition order agrees with the straight sequential fold.
    std::vector<std::size_t> all(results.size());
    std::iota(all.begin(), all.end(), 0u);
    expect_agg_near(ab_c, fold(results, all));
  }
}

// --------------------------------------------------------------- spool

TEST(Spool, JsonlRowsCarryTheSchema) {
  const auto scenarios = small_grid();
  const fs::path dir = fresh_dir("jsonl");
  FleetOptions opts;
  opts.jobs = 2;
  opts.seeds = {101, 202};
  opts.shard_size = 3;
  opts.checkpoint_dir = dir.string();
  opts.spool.format = SpoolFormat::kJsonl;
  const FleetResult result = run_fleet(scenarios, opts);
  ASSERT_TRUE(result.complete()) << result.error;

  const std::string text = slurp(dir / "spool.jsonl");
  std::istringstream lines(text);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("{\"scenario\":\"governor=", 0), 0u) << line;
    EXPECT_NE(line.find("\"metrics\":{\"total_mj\":"), std::string::npos) << line;
    ++rows;
  }
  EXPECT_EQ(rows, scenarios.size() * opts.seeds.size());  // one object per session
}

// ------------------------------------------------- durable-write injection

/// A checkpoint write that dies at *every* possible write boundary — a
/// short write then ENOSPC after k bytes, for each k — must refuse
/// cleanly and leave the previously published manifest untouched.
TEST(Checkpoint, FailedWriteAtEveryBoundaryLeavesTheOldManifestIntact) {
  const fs::path dir = fresh_dir("enospc");
  const std::string path = (dir / "manifest.ckpt").string();
  sim::Rng rng(0x51C);
  const CheckpointState old_state = random_state(rng);
  CheckpointState new_state = random_state(rng);
  new_state.shards_done = old_state.shards_done + 1;
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, old_state, &error)) << error;
  const std::string old_bytes = slurp(dir / "manifest.ckpt");

  // Upper bound on the new manifest's size: a full write against a
  // throwaway path (the injection below counts bytes against it).
  ASSERT_TRUE(write_checkpoint((dir / "probe.ckpt").string(), new_state, &error)) << error;
  const std::size_t body_size = slurp(dir / "probe.ckpt").size();
  ASSERT_GT(body_size, 0u);

  // Exhaustive up to 64 boundaries, then strided: every offset class
  // (first byte, mid-line, line boundary, last byte) gets hit.
  for (std::size_t allowed = 0; allowed < body_size;
       allowed += (body_size < 64 ? 1 : body_size / 64)) {
    IoHooks::write_gate = [allowed](std::size_t) { return allowed; };
    error.clear();
    EXPECT_FALSE(write_checkpoint(path, new_state, &error));
    IoHooks::reset();
    EXPECT_NE(error.find("manifest left untouched"), std::string::npos) << error;
    EXPECT_EQ(slurp(dir / "manifest.ckpt"), old_bytes) << "allowed=" << allowed;
    EXPECT_FALSE(fs::exists(dir / "manifest.ckpt.tmp"));  // no litter
    CheckpointState loaded;
    ASSERT_TRUE(read_checkpoint(path, &loaded, &error)) << error;
    expect_state_bits(old_state, loaded);
  }

  // A failing fsync refuses the same way: durability cannot be assumed.
  IoHooks::fsync_gate = [] { return false; };
  error.clear();
  EXPECT_FALSE(write_checkpoint(path, new_state, &error));
  IoHooks::reset();
  EXPECT_NE(error.find("manifest left untouched"), std::string::npos) << error;
  EXPECT_EQ(slurp(dir / "manifest.ckpt"), old_bytes);

  // With the gates lifted the same write goes through.
  ASSERT_TRUE(write_checkpoint(path, new_state, &error)) << error;
  CheckpointState loaded;
  ASSERT_TRUE(read_checkpoint(path, &loaded, &error)) << error;
  expect_state_bits(new_state, loaded);
}

TEST(Spool, ShortWriteSurfacesAsACleanError) {
  const fs::path dir = fresh_dir("spool_enospc");
  Spool spool;
  SpoolOptions options;
  options.format = SpoolFormat::kCsv;
  options.path = (dir / "spool.csv").string();
  std::string error;
  ASSERT_TRUE(spool.open(options, 0, &error)) << error;

  const auto scenarios = small_grid();
  core::SessionConfig config = scenarios[0].config;
  config.seed = 101;
  core::SessionArena arena;
  const core::SessionResult result = core::run_session(config, {}, &arena);

  // The header + first rows fit the staging buffer; the gated flush
  // accepts only 7 bytes and then reports ENOSPC.
  spool.append(scenarios[0], 101, result);
  IoHooks::write_gate = [](std::size_t) { return std::size_t{7}; };
  error.clear();
  EXPECT_FALSE(spool.flush(&error));
  IoHooks::reset();
  EXPECT_NE(error.find("short write"), std::string::npos) << error;
  EXPECT_NE(error.find("disk full"), std::string::npos) << error;

  // The spool latches the failure: later closes keep reporting it
  // instead of silently pretending the rows landed.
  EXPECT_FALSE(spool.close(&error));
}

TEST(Fleet, ManifestWriteFailureAbortsTheRunWithContext) {
  const auto scenarios = small_grid();
  const fs::path dir = fresh_dir("fleet_enospc");
  FleetOptions opts;
  opts.seeds = {101, 202};
  opts.shard_size = 1;
  opts.checkpoint_dir = dir.string();
  opts.checkpoint_every_shards = 1;

  IoHooks::write_gate = [](std::size_t) { return std::size_t{16}; };
  const FleetResult result = run_fleet(scenarios, opts);
  IoHooks::reset();
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("manifest left untouched"), std::string::npos) << result.error;
}

// ------------------------------------------------- cooperative timeout

TEST(Fleet, GenerousTaskTimeoutChangesNothing) {
  const auto scenarios = small_grid();
  FleetOptions opts;
  opts.seeds = {101, 202};
  opts.shard_size = 2;
  const FleetResult plain = run_fleet(scenarios, opts);
  ASSERT_TRUE(plain.complete());
  ASSERT_TRUE(plain.failures.empty());

  opts.task_timeout_ms = 60 * 1000;
  const FleetResult timed = run_fleet(scenarios, opts);
  ASSERT_TRUE(timed.complete());
  EXPECT_TRUE(timed.failures.empty());
  // The deadline check must not perturb the simulation: same digests.
  EXPECT_EQ(timed.digest_chain, plain.digest_chain);
}

TEST(Spool, CsvIsDeterministicAcrossJobCounts) {
  const auto scenarios = small_grid();
  std::string first;
  for (const int jobs : {1, 4}) {
    const fs::path dir = fresh_dir("csv_jobs_" + std::to_string(jobs));
    FleetOptions opts;
    opts.jobs = jobs;
    opts.seeds = {101, 202};
    opts.shard_size = 1;
    opts.checkpoint_dir = dir.string();
    opts.spool.format = SpoolFormat::kCsv;
    ASSERT_TRUE(run_fleet(scenarios, opts).complete());
    const std::string text = slurp(dir / "spool.csv");
    EXPECT_EQ(text.rfind("scenario,seed,metric,value\n", 0), 0u);
    if (first.empty()) {
      first = text;
    } else {
      EXPECT_EQ(text, first);
    }
  }
}

}  // namespace
}  // namespace vafs::fleet
