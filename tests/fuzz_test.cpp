// Randomized stress tests: throw seeded-random operation sequences and
// configuration draws at the substrates and assert the conservation
// invariants that must survive *any* usage, not just the scripted
// scenarios of the unit tests.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.h"
#include "cpu/cpu_model.h"
#include "fault/plan.h"
#include "net/downloader.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "simcore/rng.h"
#include "tune/param_space.h"
#include "tune/tuner.h"

namespace vafs {
namespace {

// ------------------------------------------------------------ CPU fuzzing

class CpuRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuRandomOps, ConservationHoldsUnderRandomOperations) {
  sim::Simulator simulator;
  cpu::CpuModel cpu_model(simulator, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel());
  sim::Rng rng(GetParam());

  std::vector<cpu::CpuModel::TaskId> live_tasks;
  std::uint64_t submitted = 0, completed = 0, cancelled = 0;

  for (int op = 0; op < 400; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.45) {
      const double cycles = rng.uniform(1e4, 5e8);
      live_tasks.push_back(cpu_model.submit("fuzz", cycles, [&completed] { ++completed; }));
      ++submitted;
    } else if (dice < 0.6 && !live_tasks.empty()) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live_tasks.size()) - 1));
      if (cpu_model.cancel(live_tasks[idx])) ++cancelled;
      live_tasks.erase(live_tasks.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (dice < 0.75) {
      const auto& opps = cpu_model.opps();
      const auto pick =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(opps.size()) - 1));
      cpu_model.set_frequency(opps.at(pick).freq_khz);
    } else {
      simulator.run_until(simulator.now() +
                          sim::SimTime::micros(rng.uniform_int(100, 400'000)));
    }

    // Invariant: residency accounting conserves wall time at every step.
    sim::SimTime in_state;
    for (std::size_t i = 0; i < cpu_model.opps().size(); ++i) {
      in_state += cpu_model.time_in_state(i);
    }
    ASSERT_EQ(in_state, simulator.now());
    ASSERT_EQ(cpu_model.total_busy_time() + cpu_model.total_idle_time(), simulator.now());
  }

  // Drain: every surviving task completes exactly once.
  simulator.run();
  EXPECT_EQ(completed + cancelled, submitted);
  EXPECT_FALSE(cpu_model.busy());

  // Energy must be consistent with an independent residency-based recompute.
  double expect_mj = 0.0;
  for (std::size_t i = 0; i < cpu_model.opps().size(); ++i) {
    expect_mj += cpu_model.busy_time_in_state(i).as_seconds_f() *
                 cpu_model.power_model().busy_mw(cpu_model.opps().at(i));
  }
  expect_mj += cpu_model.total_idle_time().as_seconds_f() * cpu_model.power_model().idle_mw();
  expect_mj += static_cast<double>(cpu_model.transition_count()) *
               cpu_model.power_model().transition_uj() / 1000.0;
  EXPECT_NEAR(cpu_model.energy_mj(), expect_mj, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuRandomOps,
                         ::testing::Values(1u, 22u, 333u, 4444u, 55555u, 666666u));

// ----------------------------------------------------- Downloader fuzzing

class DownloaderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DownloaderFuzz, RandomConcurrentFetchesAllCompleteExactly) {
  sim::Simulator simulator;
  net::RadioModel radio(simulator, net::RadioParams::lte());
  net::MarkovBandwidth::Params params;
  params.mean_mbps = 10;
  params.min_mbps = 0.5;
  params.max_mbps = 40;
  sim::Rng rng(GetParam());
  net::MarkovBandwidth bandwidth(params, rng.fork(0));
  cpu::CpuModel cpu_model(simulator, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel());
  cpu_model.set_frequency(2'100'000);
  net::Downloader downloader(simulator, radio, bandwidth, &cpu_model);

  const int kFetches = 60;
  std::uint64_t expected_bytes = 0;
  int completions = 0;
  for (int i = 0; i < kFetches; ++i) {
    const auto bytes = static_cast<std::uint64_t>(rng.uniform(1e3, 3e6));
    expected_bytes += bytes;
    const auto at = sim::SimTime::micros(rng.uniform_int(0, 60'000'000));
    simulator.at(at, [&downloader, &simulator, bytes, &completions] {
      downloader.fetch(bytes, [&completions, &simulator, bytes](const net::FetchResult& r) {
        ++completions;
        EXPECT_EQ(r.bytes, bytes);
        EXPECT_GE(r.first_byte, r.started);
        EXPECT_GE(r.completed, r.first_byte);
        EXPECT_LE(r.completed, simulator.now());
      });
    });
  }

  simulator.run();
  EXPECT_EQ(completions, kFetches);
  EXPECT_EQ(downloader.total_bytes_fetched(), expected_bytes);
  EXPECT_EQ(downloader.inflight(), 0u);
  EXPECT_EQ(radio.active_transfers(), 0u);
  EXPECT_EQ(radio.state(), net::RadioState::kIdle);  // tail fully drained
}

INSTANTIATE_TEST_SUITE_P(Seeds, DownloaderFuzz, ::testing::Values(7u, 77u, 777u, 7777u));

// -------------------------------------------------------- Session fuzzing

class SessionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionFuzz, RandomConfigurationsSatisfyInvariants) {
  sim::Rng rng(GetParam());

  const char* governors[] = {"performance", "powersave",   "ondemand", "conservative",
                             "interactive", "schedutil",   "vafs",     "vafs-oracle"};
  core::SessionConfig config;
  config.governor = governors[rng.uniform_int(0, 7)];
  config.fixed_rep = static_cast<std::size_t>(rng.uniform_int(0, 3));
  config.abr = static_cast<core::AbrKind>(rng.uniform_int(0, 3));
  config.net = static_cast<core::NetProfile>(rng.uniform_int(0, 3));  // poor..excellent
  config.media_duration = sim::SimTime::seconds(rng.uniform_int(12, 60));
  config.segment_duration = sim::SimTime::seconds(rng.uniform_int(2, 6));
  config.big_little = rng.bernoulli(0.4);
  config.thermal_enabled = rng.bernoulli(0.3);
  config.cpuidle = static_cast<cpu::CpuidleStrategy>(rng.uniform_int(0, 2));
  config.player.live = rng.bernoulli(0.25);
  if (config.player.live) {
    config.player.startup_buffer = config.segment_duration;
    config.player.buffer_target = config.segment_duration * 3;
    config.player.rebuffer_resume = config.segment_duration;
  }
  config.seed = rng.next_u64();

  const core::SessionResult r = core::run_session(config);

  ASSERT_TRUE(r.finished) << config.governor << " rep=" << config.fixed_rep;

  // Frame conservation.
  const auto fps = 30.0;
  const auto total = static_cast<std::uint64_t>(
      std::llround(config.media_duration.as_seconds_f() * fps));
  EXPECT_EQ(r.qoe.frames_presented + r.qoe.frames_dropped, total);

  // Energy sanity.
  EXPECT_GT(r.energy.cpu_mj, 0.0);
  EXPECT_GT(r.energy.radio_mj, 0.0);
  EXPECT_GT(r.energy.total_mj(), r.energy.cpu_mj);

  // Residency is a distribution.
  double frac_sum = 0.0;
  for (const auto& [khz, frac] : r.residency) frac_sum += frac;
  EXPECT_NEAR(frac_sum, 1.0, 1e-6);

  // big.LITTLE bookkeeping is consistent. Every *presented* frame was
  // decoded on one of the clusters; when frames are dropped the session
  // can end with the decode pipeline trailing the playhead, so the decode
  // count may fall short of the frame total but never exceed it.
  if (config.big_little) {
    EXPECT_GE(r.decode_frames_big + r.decode_frames_little, r.qoe.frames_presented);
    EXPECT_LE(r.decode_frames_big + r.decode_frames_little, total);
    EXPECT_LE(r.cpu_little_mj, r.energy.cpu_mj);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1032));  // 32 random configs

// ---------------------------------------------------------- Fault fuzzing

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, RandomFaultPlansNeverWedgeAndStayDeterministic) {
  sim::Rng rng(GetParam());

  core::SessionConfig config;
  config.governor = rng.bernoulli(0.5) ? "vafs" : "ondemand";
  config.fixed_rep = static_cast<std::size_t>(rng.uniform_int(0, 2));
  config.net = static_cast<core::NetProfile>(rng.uniform_int(0, 2));  // poor..good
  config.media_duration = sim::SimTime::seconds(rng.uniform_int(20, 45));
  config.seed = rng.next_u64();
  // Degraded-mode machinery always armed; outages can stall playback for a
  // while, so bound the wall clock well above the media length.
  config.downloader.attempt_timeout = sim::SimTime::seconds(rng.uniform_int(3, 8));
  config.downloader.max_attempts = static_cast<std::uint32_t>(rng.uniform_int(2, 5));
  config.vafs.watchdog.enabled = true;
  config.sim_cap = sim::SimTime::seconds(900);

  // Random fault plan: each kind independently on with a random intensity.
  if (rng.bernoulli(0.6)) {
    config.fault.outage_rate_per_min = rng.uniform(0.5, 3.0);
    config.fault.outage_mean_duration = sim::SimTime::millis(rng.uniform_int(500, 4000));
  }
  if (rng.bernoulli(0.6)) {
    config.fault.collapse_rate_per_min = rng.uniform(0.5, 3.0);
    config.fault.collapse_factor = rng.uniform(0.05, 0.5);
  }
  if (rng.bernoulli(0.5)) config.fault.fetch_failure_prob = rng.uniform(0.0, 0.15);
  if (rng.bernoulli(0.5)) config.fault.fetch_hang_prob = rng.uniform(0.0, 0.08);
  if (rng.bernoulli(0.5)) {
    config.fault.sysfs_fault_rate_per_min = rng.uniform(0.5, 4.0);
    config.fault.sysfs_fault_mean_duration = sim::SimTime::seconds(rng.uniform_int(1, 6));
  }
  if (rng.bernoulli(0.4)) {
    config.fault.decode_spike_rate_per_min = rng.uniform(0.5, 2.0);
    config.fault.decode_spike_factor = rng.uniform(1.2, 2.5);
  }
  if (rng.bernoulli(0.4)) {
    config.fault.thermal_cap_rate_per_min = rng.uniform(0.5, 2.0);
    config.fault.thermal_cap_fraction = rng.uniform(0.4, 0.9);
  }

  const core::SessionResult r = core::run_session(config);

  // Whatever the plan threw at it, the session finished (or hit the cap
  // having never wedged — finished must still be set by full playback).
  ASSERT_TRUE(r.finished) << "governor=" << config.governor;

  // Frame conservation survives faults.
  const auto total = static_cast<std::uint64_t>(
      std::llround(config.media_duration.as_seconds_f() * 30.0));
  EXPECT_EQ(r.qoe.frames_presented + r.qoe.frames_dropped, total);

  // Residency is still a distribution and energy is still positive.
  double frac_sum = 0.0;
  for (const auto& [khz, frac] : r.residency) frac_sum += frac;
  EXPECT_NEAR(frac_sum, 1.0, 1e-6);
  EXPECT_GT(r.energy.cpu_mj, 0.0);

  // Injection bookkeeping is internally consistent: every timed-out
  // attempt became either a retry or a terminal failure.
  EXPECT_LE(r.fetch_timeouts, r.qoe.fetch_retries + r.qoe.fetch_failures);
  EXPECT_LE(r.vafs_fallback_time, r.wall);
  if (config.governor != "vafs") {
    EXPECT_EQ(r.vafs_fallback_entries, 0u);
    EXPECT_EQ(r.injected_sysfs_errors, 0u);
  }

  // Determinism: the identical faulted config replays bit-identically.
  const core::SessionResult again = core::run_session(config);
  EXPECT_EQ(r.energy.cpu_mj, again.energy.cpu_mj);
  EXPECT_EQ(r.qoe.rebuffer_time, again.qoe.rebuffer_time);
  EXPECT_EQ(r.qoe.fetch_retries, again.qoe.fetch_retries);
  EXPECT_EQ(r.fault_windows, again.fault_windows);
  EXPECT_EQ(r.vafs_fallback_time, again.vafs_fallback_time);
  EXPECT_EQ(r.wall, again.wall);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Range<std::uint64_t>(9000, 9016));  // 16 random plans

// ----------------------------------------------------------- Seek fuzzing

class SeekFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeekFuzz, RandomSeeksNeverWedgeTheSession) {
  sim::Rng rng(GetParam());

  core::SessionConfig config;
  config.governor = rng.bernoulli(0.5) ? "vafs" : "ondemand";
  config.fixed_rep = static_cast<std::size_t>(rng.uniform_int(0, 2));
  config.net = core::NetProfile::kGood;
  config.media_duration = sim::SimTime::seconds(40);
  config.seed = rng.next_u64();
  // Cap forward progress: random seeks can replay content, so bound wall.
  config.sim_cap = sim::SimTime::seconds(600);

  // Schedule 3 random seeks through the hooks.
  core::SessionHooks hooks;
  const std::int64_t seek_at_s[3] = {rng.uniform_int(3, 12), rng.uniform_int(13, 22),
                                     rng.uniform_int(23, 32)};
  const std::int64_t seek_to_s[3] = {rng.uniform_int(0, 39), rng.uniform_int(0, 39),
                                     rng.uniform_int(0, 39)};
  hooks.on_ready = [&](core::SessionLive& live) {
    for (int i = 0; i < 3; ++i) {
      live.sim->at(sim::SimTime::seconds(seek_at_s[i]),
                   [player = live.player, to = seek_to_s[i]] {
                     player->seek(sim::SimTime::seconds(to));  // may be rejected; fine
                   });
    }
  };

  const core::SessionResult r = core::run_session(config, hooks);
  ASSERT_TRUE(r.finished);
  EXPECT_LE(r.qoe.seek_count, 3u);
  // Whatever happened, playback ended at the real end of the content.
  EXPECT_GT(r.qoe.frames_presented, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeekFuzz,
                         ::testing::Values(11u, 222u, 3333u, 44444u, 555555u, 6666666u, 777u,
                                           88u));

// ----------------------------------------------------- ParamSpace fuzzing

class ParamSpaceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParamSpaceFuzz, RandomSpacesValidateAndSearchInBounds) {
  sim::Rng rng(GetParam());
  const std::vector<std::string> knobs = tune::ParamSpace::knob_names();

  // Malformed dimensions must be rejected up front — inverted ranges,
  // non-finite bounds, non-positive steps on non-degenerate ranges.
  {
    tune::ParamSpace bad;
    const std::string& knob = knobs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(knobs.size()) - 1))];
    EXPECT_THROW(bad.dim(knob, 1.0, 0.0, 0.1), std::invalid_argument);
    EXPECT_THROW(bad.dim(knob, 0.0, 1.0, -rng.uniform(0.01, 1.0)), std::invalid_argument);
    EXPECT_THROW(bad.dim(knob, 0.0, std::numeric_limits<double>::quiet_NaN(), 0.1),
                 std::invalid_argument);
    EXPECT_EQ(bad.dims(), 0u);  // nothing leaked into the space
  }

  // A random well-formed space: 1-4 distinct knobs, each either a
  // degenerate single point (lo == hi, zero width) or a small grid.
  tune::ParamSpace space;
  const int dims = static_cast<int>(rng.uniform_int(1, 4));
  std::size_t next_knob = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(knobs.size()) - 1));
  for (int d = 0; d < dims; ++d) {
    const std::string& knob = knobs[next_knob];
    next_knob = (next_knob + 1) % knobs.size();  // distinct by construction
    const double lo = rng.uniform(0.0, 10.0);
    if (rng.bernoulli(0.25)) {
      space.dim(knob, lo, lo, rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.1, 1.0));
    } else {
      const double step = rng.uniform(0.05, 2.0);
      space.dim(knob, lo, lo + step * rng.uniform_int(1, 6), step);
    }
  }

  // Every candidate the tuner asks any evaluator to score stays inside
  // the grid: right arity, every index < count. values() re-checks the
  // same bounds and must never throw on tuner-generated candidates —
  // including on zero-width (single-point) dimensions.
  class BoundsAssertingEvaluator : public tune::Evaluator {
   public:
    explicit BoundsAssertingEvaluator(const tune::ParamSpace& space) : space_(space) {}
    tune::RoundResult evaluate(const tune::RoundRequest& req) override {
      tune::RoundResult out;
      EXPECT_FALSE(req.candidates.empty());
      EXPECT_FALSE(req.seeds.empty());
      for (const tune::Candidate& c : req.candidates) {
        EXPECT_EQ(c.size(), space_.dims());
        for (std::size_t d = 0; d < c.size(); ++d) EXPECT_LT(c[d], space_.def(d).count());
        const std::vector<double> vals = space_.values(c);  // throws if out of bounds
        tune::Score s;
        s.evaluated = true;
        s.feasible = true;
        for (const double v : vals) s.energy_mj += v;
        s.runs = static_cast<std::int64_t>(req.seeds.size());
        out.scores.push_back(s);
      }
      return out;
    }
    const tune::ParamSpace& space_;
  };

  BoundsAssertingEvaluator eval(space);
  tune::TuneContext ctx;
  ctx.name = "fuzz/cell";
  tune::TunerOptions opts;
  opts.search_seed = rng.next_u64();
  opts.initial_candidates = static_cast<int>(rng.uniform_int(1, 12));
  opts.eta = static_cast<int>(rng.uniform_int(2, 5));
  opts.seed_schedule = {1};
  while (opts.seed_schedule.size() < static_cast<std::size_t>(rng.uniform_int(1, 3))) {
    opts.seed_schedule.push_back(opts.seed_schedule.back() + static_cast<int>(rng.uniform_int(1, 3)));
  }
  opts.refine_passes = static_cast<int>(rng.uniform_int(0, 3));
  opts.sensitivity = rng.bernoulli(0.5);
  const tune::TuneReport report = run_tuner(space, {ctx}, opts, &eval);
  ASSERT_TRUE(report.complete()) << report.error;
  ASSERT_EQ(report.cells.size(), 1u);
  ASSERT_EQ(report.cells[0].best.size(), space.dims());
  for (std::size_t d = 0; d < space.dims(); ++d) {
    EXPECT_LT(report.cells[0].best[d], space.def(d).count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParamSpaceFuzz,
                         ::testing::Range<std::uint64_t>(4000, 4024));  // 24 random spaces

// ------------------------------------------------------- Wire-protocol fuzzing
//
// Seeded-random hostile clients against a live decision server: truncated
// frames, corrupted bytes, oversized lengths, garbage, and mid-frame
// disconnects. The contract under attack: every malformed input ends in a
// clean error reply or a dropped connection — never a crash, never a hang,
// and never collateral damage to a well-behaved client on the same server.

namespace wire_fuzz {

/// A raw socket client with poll-bounded reads: a server that stops
/// responding is a test failure, not a wedged test binary.
class RawClient {
 public:
  ~RawClient() { reset(); }

  bool connect_to(const std::string& path) {
    reset();
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      reset();
      return false;
    }
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  /// Best-effort send (the server may have already dropped us).
  void send_bytes(const std::uint8_t* data, std::size_t len) {
    if (fd_ < 0) return;
    (void)send(fd_, data, len, MSG_NOSIGNAL);
  }
  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    send_bytes(bytes.data(), bytes.size());
  }

  /// Half-close: tells the server no more bytes are coming, so a read
  /// blocked mid-frame sees EOF instead of waiting forever.
  void finish_sending() {
    if (fd_ >= 0) shutdown(fd_, SHUT_WR);
  }

  /// Reads until the server closes the connection. Returns the number of
  /// reply bytes drained, or -1 if the server neither replied nor closed
  /// within the deadline (a hang — the one unacceptable outcome).
  long drain_until_eof(int timeout_ms) {
    long total = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    std::uint8_t buf[512];
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = poll(&pfd, 1, 50);
      if (pr <= 0) continue;
      const ssize_t n = read(fd_, buf, sizeof buf);
      if (n == 0) {
        reset();
        return total;  // clean drop
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        reset();
        return total;  // reset by peer: also a drop
      }
      total += static_cast<long>(n);
    }
    return -1;
  }

  /// Reads exactly one reply frame (header + payload). Returns false on
  /// drop or timeout; *hung set when the deadline passed with the
  /// connection still open.
  bool read_frame(serve::FrameHeader* header, std::vector<std::uint8_t>* payload,
                  bool* hung, int timeout_ms) {
    *hung = false;
    std::uint8_t head[serve::kWireHeaderSize];
    if (!read_exact(head, sizeof head, timeout_ms, hung)) return false;
    if (serve::decode_header(head, *header) != serve::WireError::kNone) return false;
    payload->resize(header->payload_len);
    if (header->payload_len > 0 &&
        !read_exact(payload->data(), payload->size(), timeout_ms, hung)) {
      return false;
    }
    return true;
  }

 private:
  bool read_exact(std::uint8_t* buf, std::size_t len, int timeout_ms, bool* hung) {
    std::size_t got = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (got < len) {
      if (std::chrono::steady_clock::now() >= deadline) {
        *hung = true;
        return false;
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (poll(&pfd, 1, 50) <= 0) continue;
      const ssize_t n = read(fd_, buf + got, len - got);
      if (n == 0) {
        reset();
        return false;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        reset();
        return false;
      }
      got += static_cast<std::size_t>(n);
    }
    return true;
  }

  void reset() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  int fd_ = -1;
};

core::DecisionStreamInfo valid_stream_info() {
  core::DecisionStreamInfo info;
  info.geometry.clusters.push_back({{300000, 600000, 900000, 1200000}, 1.0, 1'200'000.0});
  return info;
}

std::vector<std::uint8_t> valid_frame(sim::Rng& rng) {
  std::vector<std::uint8_t> frame;
  std::vector<std::uint8_t> payload;
  switch (rng.uniform_int(0, 3)) {
    case 0:
      serve::encode_frame(frame, serve::MsgType::kPing, 0, payload);
      break;
    case 1:
      serve::encode_stream_info(payload, valid_stream_info());
      serve::encode_frame(frame, serve::MsgType::kHello,
                          static_cast<std::uint64_t>(rng.uniform_int(0, 7)), payload);
      break;
    case 2: {
      core::DecisionRequest req;
      req.event = core::DecisionEvent::kReplan;
      req.want_plan = true;
      req.now_us = rng.uniform_int(0, 1'000'000);
      serve::encode_request(payload, req);
      serve::encode_frame(frame, serve::MsgType::kDecide,
                          static_cast<std::uint64_t>(rng.uniform_int(0, 7)), payload);
      break;
    }
    default:
      serve::encode_frame(frame, serve::MsgType::kClose,
                          static_cast<std::uint64_t>(rng.uniform_int(0, 7)), payload);
      break;
  }
  return frame;
}

}  // namespace wire_fuzz

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, MalformedFramesNeverCrashOrHangTheServer) {
  using wire_fuzz::RawClient;
  sim::Rng rng(GetParam());

  const std::string socket_path =
      "/tmp/vafs-wf-" + std::to_string(getpid()) + "-" + std::to_string(GetParam()) + ".sock";
  serve::Server server({socket_path, 32, 16, nullptr});
  ASSERT_TRUE(server.start());

  constexpr int kTimeoutMs = 5000;
  RawClient client;
  ASSERT_TRUE(client.connect_to(socket_path));

  for (int iter = 0; iter < 120; ++iter) {
    if (!client.connected()) {
      ASSERT_TRUE(client.connect_to(socket_path));
    }
    std::vector<std::uint8_t> frame = wire_fuzz::valid_frame(rng);

    switch (rng.uniform_int(0, 4)) {
      case 0: {
        // Corrupt 1-4 random bytes, half-close, and wait for the verdict:
        // an error reply, a drop, or (if the frame survived semantically,
        // e.g. a corrupted byte inside an unread field is impossible — the
        // checksum covers everything) a normal reply. Never a hang.
        const int flips = static_cast<int>(rng.uniform_int(1, 4));
        for (int f = 0; f < flips; ++f) {
          const auto at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(frame.size() - 1)));
          frame[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
        }
        client.send_bytes(frame);
        client.finish_sending();
        ASSERT_NE(client.drain_until_eof(kTimeoutMs), -1)
            << "server hung on a corrupted frame (iter " << iter << ")";
        break;
      }
      case 1: {
        // Truncate mid-frame and disconnect: the committed read on the
        // server must see EOF and drop, never wait forever.
        const auto keep = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(frame.size() - 1)));
        client.send_bytes(frame.data(), keep);
        client.finish_sending();
        ASSERT_NE(client.drain_until_eof(kTimeoutMs), -1)
            << "server hung on a truncated frame (iter " << iter << ")";
        break;
      }
      case 2: {
        // Oversized length prefix: must be answered (kOversized) and
        // dropped without the server trying to read the advertised bytes.
        frame[0] = 0xFF;
        frame[1] = 0xFF;
        frame[2] = static_cast<std::uint8_t>(rng.uniform_int(0x01, 0xFF));
        frame[3] = static_cast<std::uint8_t>(rng.uniform_int(0x00, 0x7F));
        client.send_bytes(frame);
        serve::FrameHeader reply;
        std::vector<std::uint8_t> payload;
        bool hung = false;
        const bool got = client.read_frame(&reply, &payload, &hung, kTimeoutMs);
        ASSERT_FALSE(hung) << "server hung on an oversized frame (iter " << iter << ")";
        if (got) {
          EXPECT_EQ(reply.type, serve::MsgType::kError);
          serve::WireError code = serve::WireError::kNone;
          ASSERT_TRUE(serve::decode_error(payload.data(), payload.size(), code));
          EXPECT_EQ(code, serve::WireError::kOversized);
        }
        ASSERT_NE(client.drain_until_eof(kTimeoutMs), -1);
        break;
      }
      case 3: {
        // Pure garbage of random length.
        std::vector<std::uint8_t> garbage(
            static_cast<std::size_t>(rng.uniform_int(1, 128)));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        client.send_bytes(garbage);
        client.finish_sending();
        ASSERT_NE(client.drain_until_eof(kTimeoutMs), -1)
            << "server hung on garbage (iter " << iter << ")";
        break;
      }
      default: {
        // A well-formed frame sent whole, then an abrupt mid-frame
        // disconnect on the next one: both must leave the server alive.
        client.send_bytes(frame);
        serve::FrameHeader reply;
        std::vector<std::uint8_t> payload;
        bool hung = false;
        // kClose has no reply; everything else answers exactly once.
        const bool expect_reply =
            frame[7] != static_cast<std::uint8_t>(serve::MsgType::kClose);
        if (expect_reply) {
          EXPECT_TRUE(client.read_frame(&reply, &payload, &hung, kTimeoutMs));
          ASSERT_FALSE(hung) << "server hung on a valid frame (iter " << iter << ")";
        }
        std::vector<std::uint8_t> half = wire_fuzz::valid_frame(rng);
        client.send_bytes(half.data(), half.size() / 2);
        client.finish_sending();
        ASSERT_NE(client.drain_until_eof(kTimeoutMs), -1);
        break;
      }
    }
  }

  // The server survived the campaign: still running, still correct for a
  // well-behaved client.
  EXPECT_TRUE(server.running());
  serve::ServeConnection good(socket_path);
  EXPECT_TRUE(good.ping());
  const std::uint64_t stream = good.open_stream(wire_fuzz::valid_stream_info());
  core::DecisionRequest req;
  req.event = core::DecisionEvent::kReplan;
  req.want_plan = true;
  const core::DecisionResponse resp = good.decide(stream, req);
  EXPECT_TRUE(resp.planned);
  server.stop();
  EXPECT_GT(server.stats().protocol_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Range<std::uint64_t>(5000, 5008));  // 8 campaigns

}  // namespace
}  // namespace vafs
