// The canonical golden-session corpus, shared by the golden-digest suite
// (golden_test.cpp, which pins these sessions' digests in
// tests/golden/digests.json) and the serving differential suite
// (serve_test.cpp, which proves a daemon-answered run of the same corpus
// produces bit-identical digests). One definition, so the two suites can
// never drift apart on what "the corpus" is.
//
// governor × {steady, lossy, faulted}, one fixed seed, 20 s of media:
// small enough to run in seconds, rich enough that every instrumented
// subsystem (player, downloader, governors, VAFS controller, fault
// injector) contributes events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.h"

namespace vafs::golden {

constexpr std::uint64_t kGoldenSeed = 9001;

struct GoldenCase {
  std::string name;
  core::SessionConfig config;
};

inline std::vector<GoldenCase> golden_cases() {
  const std::vector<std::string> governors = {"ondemand", "conservative", "schedutil", "vafs"};
  std::vector<GoldenCase> cases;
  for (const auto& governor : governors) {
    core::SessionConfig base;
    base.governor = governor;
    base.seed = kGoldenSeed;
    base.media_duration = sim::SimTime::seconds(20);
    base.fixed_rep = 2;

    {
      core::SessionConfig steady = base;
      steady.net = core::NetProfile::kFair;
      cases.push_back({governor + ".steady", steady});
    }
    {
      // Poor network + rate ABR: rebuffers, retries and rep switches.
      core::SessionConfig lossy = base;
      lossy.net = core::NetProfile::kPoor;
      lossy.abr = core::AbrKind::kRate;
      cases.push_back({governor + ".lossy", lossy});
    }
    {
      // The mild chaos preset: every fault kind enabled, compiled into a
      // deterministic per-seed schedule.
      core::SessionConfig faulted = base;
      faulted.net = core::NetProfile::kFair;
      faulted.fault = fault::FaultPlanConfig::mild();
      cases.push_back({governor + ".faulted", faulted});
    }
  }
  return cases;
}

}  // namespace vafs::golden
