// Golden-digest suite: a corpus of canonical sessions whose trace digests
// are pinned in tests/golden/digests.json. Any change to simulated
// behaviour — an event added, reordered, or re-timed — flips a digest and
// fails here with a pointed diff: the checkpoint chain localizes the first
// divergent 64-event window and the events inside it are printed with
// their decoded names and arguments.
//
// After an *intentional* behaviour change, regenerate the corpus:
//
//   ./golden_test --update-golden
//
// and commit the updated digests.json alongside the change. The file is
// written into the source tree (VAFS_GOLDEN_DIR), so a rebuild is not
// needed between regenerating and re-running.
//
// This binary carries its own main(): --update-golden must be consumed
// before InitGoogleTest sees it.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "golden_corpus.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace {

using namespace vafs;

// The canonical corpus lives in golden_corpus.h, shared with the serving
// differential suite (serve_test.cpp).
using golden::GoldenCase;
using golden::golden_cases;
using golden::kGoldenSeed;

// ---------------------------------------------------------------------------
// Golden file I/O. The format is deliberately minimal JSON; the parser
// below reads exactly what write_golden emits (plus arbitrary whitespace).

struct GoldenEntry {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::vector<std::uint64_t> checkpoints;
};

std::string golden_path() { return std::string(VAFS_GOLDEN_DIR) + "/digests.json"; }

void write_golden(std::ostream& out, const std::map<std::string, GoldenEntry>& entries) {
  out << "{\n  \"schema\": 1,\n  \"sessions\": {";
  bool first_entry = true;
  for (const auto& [name, e] : entries) {
    out << (first_entry ? "\n" : ",\n");
    first_entry = false;
    out << "    \"" << name << "\": {\n";
    out << "      \"digest\": \"" << obs::digest_hex(e.digest) << "\",\n";
    out << "      \"events\": " << e.events << ",\n";
    out << "      \"checkpoints\": [";
    for (std::size_t i = 0; i < e.checkpoints.size(); ++i) {
      if (i % 4 == 0) out << "\n        ";
      out << "\"" << obs::digest_hex(e.checkpoints[i]) << "\"";
      if (i + 1 < e.checkpoints.size()) out << ", ";
    }
    out << "\n      ]\n    }";
  }
  out << "\n  }\n}\n";
}

// Tiny recursive-descent parser for the golden file. Returns false (with
// a position hint) on anything it does not recognize — the fix is always
// "regenerate with --update-golden".
class GoldenParser {
 public:
  explicit GoldenParser(std::string text) : text_(std::move(text)) {}

  bool parse(std::map<std::string, GoldenEntry>* out) {
    skip_ws();
    if (!expect('{')) return false;
    // "schema": 1
    std::string key;
    if (!parse_string(&key) || key != "schema" || !expect(':')) return false;
    std::uint64_t schema = 0;
    if (!parse_u64(&schema) || schema != 1) return false;
    if (!expect(',')) return false;
    if (!parse_string(&key) || key != "sessions" || !expect(':')) return false;
    if (!expect('{')) return false;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return finish();
    }
    for (;;) {
      std::string name;
      if (!parse_string(&name) || !expect(':')) return false;
      GoldenEntry entry;
      if (!parse_entry(&entry)) return false;
      (*out)[name] = std::move(entry);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!expect('}')) return false;
    return finish();
  }

  std::size_t pos() const { return pos_; }

 private:
  bool finish() {
    if (!expect('}')) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  bool parse_entry(GoldenEntry* entry) {
    if (!expect('{')) return false;
    std::string key;
    if (!parse_string(&key) || key != "digest" || !expect(':')) return false;
    if (!parse_hex(&entry->digest)) return false;
    if (!expect(',')) return false;
    if (!parse_string(&key) || key != "events" || !expect(':')) return false;
    if (!parse_u64(&entry->events)) return false;
    if (!expect(',')) return false;
    if (!parse_string(&key) || key != "checkpoints" || !expect(':')) return false;
    if (!expect('[')) return false;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return expect('}');
    }
    for (;;) {
      std::uint64_t cp = 0;
      if (!parse_hex(&cp)) return false;
      entry->checkpoints.push_back(cp);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (!expect(']')) return false;
    return expect('}');
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') out->push_back(text_[pos_++]);
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_u64(std::uint64_t* out) {
    skip_ws();
    if (peek() < '0' || peek() > '9') return false;
    *out = 0;
    while (peek() >= '0' && peek() <= '9') {
      *out = *out * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    }
    return true;
  }

  bool parse_hex(std::uint64_t* out) {
    std::string s;
    if (!parse_string(&s)) return false;
    return obs::parse_digest_hex(s, out);
  }

  std::string text_;
  std::size_t pos_ = 0;
};

bool load_golden(std::map<std::string, GoldenEntry>* out, std::string* error) {
  std::ifstream in(golden_path());
  if (!in) {
    *error = "cannot open " + golden_path() + " (run ./golden_test --update-golden)";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  GoldenParser parser(buf.str());
  if (!parser.parse(out)) {
    *error = golden_path() + " is malformed near byte " + std::to_string(parser.pos()) +
             " (regenerate with ./golden_test --update-golden)";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Running a case and diffing a mismatch.

struct CaseRun {
  obs::Tracer tracer;  // full ring: the corpus must fit for event diffing
  core::SessionResult result;
};

void run_case(const GoldenCase& c, CaseRun* out,
              const core::SessionHooks& extra_hooks = {}) {
  core::SessionHooks hooks = extra_hooks;
  hooks.tracer = &out->tracer;
  out->result = core::run_session(c.config, hooks);
}

std::string format_event(const obs::Tracer& tracer, std::size_t abs_index) {
  const std::size_t oldest = static_cast<std::size_t>(tracer.recorded()) - tracer.size();
  const obs::TraceEvent& ev = tracer.event(abs_index - oldest);
  const obs::EventInfo& info = obs::event_info(ev.kind);
  char buf[256];
  int n = std::snprintf(buf, sizeof buf, "  #%zu  t=%" PRId64 "us  %-16s", abs_index, ev.t_us,
                        info.name);
  std::string line(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
  const std::pair<const char*, std::uint64_t> args[] = {
      {info.arg_a, ev.a}, {info.arg_b, ev.b}, {info.arg_c, ev.c}};
  for (const auto& [arg_name, value] : args) {
    if (arg_name == nullptr) continue;
    line += " ";
    line += arg_name;
    line += "=";
    line += std::to_string(value);
  }
  return line;
}

/// Locates the first divergent checkpoint window and renders the actual
/// events inside it — the "pointed diff" a digest mismatch fails with.
std::string describe_divergence(const obs::Tracer& tracer, const GoldenEntry& golden) {
  constexpr std::uint64_t kInterval = obs::Tracer::kCheckpointInterval;
  const auto& actual = tracer.checkpoints();
  const std::size_t common = std::min(actual.size(), golden.checkpoints.size());
  std::size_t div = common;  // first divergent checkpoint block
  for (std::size_t i = 0; i < common; ++i) {
    if (actual[i] != golden.checkpoints[i]) {
      div = i;
      break;
    }
  }
  const std::uint64_t lo = static_cast<std::uint64_t>(div) * kInterval;
  const std::uint64_t hi = std::min<std::uint64_t>(lo + kInterval, tracer.recorded());

  std::string msg = "trace digest mismatch: got " + obs::digest_hex(tracer.digest()) +
                    ", golden " + obs::digest_hex(golden.digest) + "\n";
  msg += "events: got " + std::to_string(tracer.recorded()) + ", golden " +
         std::to_string(golden.events) + "\n";
  msg += "first divergence in events [" + std::to_string(lo) + ", " +
         std::to_string(lo + kInterval) + ") — actual events in that window:\n";
  if (tracer.dropped() > 0 && lo < tracer.recorded() - tracer.size()) {
    msg += "  (window evicted from the ring; raise ring_capacity to inspect)\n";
  } else {
    for (std::uint64_t i = lo; i < hi; ++i) {
      msg += format_event(tracer, static_cast<std::size_t>(i)) + "\n";
    }
  }
  msg += "if this change is intentional: ./golden_test --update-golden";
  return msg;
}

// ---------------------------------------------------------------------------

TEST(GoldenDigests, CorpusMatchesGoldenFile) {
  std::map<std::string, GoldenEntry> golden;
  std::string error;
  ASSERT_TRUE(load_golden(&golden, &error)) << error;

  const auto cases = golden_cases();
  ASSERT_EQ(golden.size(), cases.size())
      << "golden file has " << golden.size() << " sessions, corpus defines " << cases.size()
      << " (regenerate with ./golden_test --update-golden)";

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto it = golden.find(c.name);
    ASSERT_NE(it, golden.end()) << "no golden entry for '" << c.name
                                << "' (regenerate with ./golden_test --update-golden)";
    CaseRun run;
    run_case(c, &run);
    EXPECT_TRUE(run.result.finished);
    EXPECT_GT(run.tracer.recorded(), 0u);
    if (run.tracer.digest() != it->second.digest ||
        run.tracer.recorded() != it->second.events) {
      ADD_FAILURE() << describe_divergence(run.tracer, it->second);
    }
  }
}

// A behaviour change as small as one governor tunable must flip the
// digest — and the checkpoint chain must localize it. The tweak happens
// through sysfs (on_ready), exactly how a stray code change would surface.
TEST(GoldenDigests, OneLineGovernorTweakIsCaught) {
  GoldenCase c;
  c.name = "ondemand.tweaked";
  c.config.governor = "ondemand";
  c.config.seed = kGoldenSeed;
  c.config.media_duration = sim::SimTime::seconds(20);
  c.config.net = core::NetProfile::kFair;

  CaseRun baseline;
  run_case(c, &baseline);

  core::SessionHooks tweak;
  tweak.on_ready = [](core::SessionLive& live) {
    const auto status =
        live.tree->write("devices/system/cpu/cpufreq/policy0/ondemand/up_threshold", "95");
    ASSERT_TRUE(status.ok());
  };
  CaseRun tweaked;
  run_case(c, &tweaked, tweak);

  ASSERT_NE(baseline.tracer.digest(), tweaked.tracer.digest())
      << "a 95% up_threshold must change the frequency trajectory";

  // The pointed diff must localize the divergence and decode real events.
  GoldenEntry as_golden;
  as_golden.digest = baseline.tracer.digest();
  as_golden.events = baseline.tracer.recorded();
  as_golden.checkpoints = baseline.tracer.checkpoints();
  const std::string diff = describe_divergence(tweaked.tracer, as_golden);
  EXPECT_NE(diff.find("first divergence in events ["), std::string::npos) << diff;
  EXPECT_NE(diff.find("t="), std::string::npos) << diff;
  // The tweak applies from t=0, so divergence may land in the very first
  // checkpoint block — the diff must still name a concrete 64-event window
  // and decode the events inside it (asserted above).
}

// Exporting a corpus session must yield a loadable Chrome trace: valid
// JSON shape, a traceEvents array, metadata + at least one of each used
// phase. (Perfetto-loadability is exercised for real by the CI artifact.)
TEST(GoldenDigests, ChromeTraceExportIsWellFormed) {
  const auto cases = golden_cases();
  CaseRun run;
  run_case(cases.front(), &run);

  std::ostringstream out;
  obs::write_chrome_trace(out, run.tracer, "golden");
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

}  // namespace

// ---------------------------------------------------------------------------

namespace {

int update_golden() {
  std::map<std::string, GoldenEntry> entries;
  for (const auto& c : golden_cases()) {
    CaseRun run;
    run_case(c, &run);
    if (!run.result.finished) {
      std::fprintf(stderr, "golden case '%s' did not finish — refusing to pin it\n",
                   c.name.c_str());
      return 1;
    }
    GoldenEntry e;
    e.digest = run.tracer.digest();
    e.events = run.tracer.recorded();
    e.checkpoints = run.tracer.checkpoints();
    std::printf("  %-24s %s  (%" PRIu64 " events)\n", c.name.c_str(),
                vafs::obs::digest_hex(e.digest).c_str(), e.events);
    entries[c.name] = std::move(e);
  }
  std::ofstream out(golden_path(), std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", golden_path().c_str());
    return 1;
  }
  write_golden(out, entries);
  std::printf("wrote %s (%zu sessions)\n", golden_path().c_str(), entries.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) return update_golden();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
