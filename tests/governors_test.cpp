// Behavioural tests for the baseline governors under synthetic loads:
// these pin the *algorithms* (jump-to-max, proportional settle, stepwise
// ramps, hispeed+hold, util mapping) that the paper's evaluation compares
// against.
#include <gtest/gtest.h>

#include "cpu/cpufreq_policy.h"
#include "governors/registry.h"
#include "simcore/simulator.h"

namespace vafs::governors {
namespace {

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest() : cpu_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()) {
    register_standard(registry_);
  }

  void use(const std::string& governor) {
    policy_ = std::make_unique<cpu::CpufreqPolicy>(sim_, cpu_, registry_, governor);
  }

  /// Saturates the CPU indefinitely; returns the task id for cancel().
  cpu::CpuModel::TaskId saturate() { return cpu_.submit("sat", 1e15, nullptr); }

  /// Submits `cycles` every `period` — a constant-rate demand.
  void demand(sim::SimTime period, double cycles) {
    sim_.every(period, [this, cycles] { cpu_.submit("work", cycles, nullptr); });
  }

  sim::Simulator sim_;
  cpu::CpuModel cpu_;
  cpu::GovernorRegistry registry_;
  std::unique_ptr<cpu::CpufreqPolicy> policy_;
};

// ---------------------------------------------------------------- ondemand

TEST_F(GovernorTest, OndemandJumpsToMaxUnderSaturation) {
  use("ondemand");
  saturate();
  sim_.run_until(sim::SimTime::millis(50));  // two samples
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(GovernorTest, OndemandFallsToMinWhenIdle) {
  use("ondemand");
  const auto id = saturate();
  sim_.run_until(sim::SimTime::millis(100));
  cpu_.cancel(id);
  sim_.run_until(sim::SimTime::millis(300));
  EXPECT_EQ(policy_->cur_khz(), 300'000u);
}

TEST_F(GovernorTest, OndemandSettlesProportionallyUnderConstantLoad) {
  use("ondemand");
  // 300 MHz of demand: 6e6 cycles per 20 ms. Steady state: the lowest OPP
  // where load stays under up_threshold with the proportional rule = 600 MHz.
  demand(sim::SimTime::millis(20), 6e6);
  sim_.run_until(sim::SimTime::seconds(2));
  EXPECT_EQ(policy_->cur_khz(), 600'000u);
}

TEST_F(GovernorTest, OndemandSamplingDownFactorDelaysDownscale) {
  use("ondemand");
  // Raise the down factor via the governor's tunables (through the policy's
  // live governor object — sysfs plumbing is covered elsewhere).
  for (auto& tunable : policy_->governor()->tunables()) {
    if (tunable.name == "sampling_down_factor") {
      ASSERT_TRUE(tunable.store("5").ok());
    }
  }
  const auto id = saturate();
  sim_.run_until(sim::SimTime::millis(100));
  ASSERT_EQ(policy_->cur_khz(), 2'100'000u);
  cpu_.cancel(id);
  // With factor 5 and 20 ms sampling, the governor must hold max for ~100 ms.
  sim_.run_until(sim_.now() + sim::SimTime::millis(60));
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
  sim_.run_until(sim_.now() + sim::SimTime::millis(200));
  EXPECT_EQ(policy_->cur_khz(), 300'000u);
}

TEST_F(GovernorTest, OndemandPowersaveBiasCapsBelowMax) {
  use("ondemand");
  for (auto& tunable : policy_->governor()->tunables()) {
    if (tunable.name == "powersave_bias") {
      ASSERT_TRUE(tunable.store("200").ok());   // shave 20 %
      EXPECT_TRUE(tunable.store("1001").error() == sysfs::Errno::kInval);
    }
  }
  saturate();
  sim_.run_until(sim::SimTime::millis(200));
  // Saturated target = max * 0.8 = 1.68 GHz -> snaps down to 1.5 GHz.
  EXPECT_EQ(policy_->cur_khz(), 1'500'000u);
}

// ------------------------------------------------------------ conservative

TEST_F(GovernorTest, ConservativeRampsStepwiseNotJump) {
  use("conservative");
  saturate();
  // One sample: exactly one step (5 % of 2.1 GHz = 105 MHz -> next OPP up).
  sim_.run_until(sim::SimTime::millis(21));
  EXPECT_EQ(policy_->cur_khz(), 600'000u);
  sim_.run_until(sim::SimTime::millis(41));
  EXPECT_EQ(policy_->cur_khz(), 900'000u);
  // Eventually reaches max.
  sim_.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(GovernorTest, ConservativeStepsDownWhenQuiet) {
  use("conservative");
  const auto id = saturate();
  sim_.run_until(sim::SimTime::seconds(1));
  ASSERT_EQ(policy_->cur_khz(), 2'100'000u);
  cpu_.cancel(id);
  sim_.run_until(sim_.now() + sim::SimTime::millis(21));
  EXPECT_LT(policy_->cur_khz(), 2'100'000u);
  EXPECT_GE(policy_->cur_khz(), 1'800'000u);  // single step, not a crash dive
  sim_.run_until(sim_.now() + sim::SimTime::seconds(1));
  EXPECT_EQ(policy_->cur_khz(), 300'000u);
}

// ------------------------------------------------------------- interactive

TEST_F(GovernorTest, InteractiveJumpsToHispeedOnSaturation) {
  use("interactive");
  saturate();
  sim_.run_until(sim::SimTime::millis(21));
  // Default hispeed = OPP at/above 60 % of max = 1.5 GHz.
  EXPECT_EQ(policy_->cur_khz(), 1'500'000u);
  sim_.run_until(sim::SimTime::millis(61));
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);  // still saturated: all the way
}

TEST_F(GovernorTest, InteractiveHoldsFloorForMinSampleTime) {
  use("interactive");
  const auto id = saturate();
  // Raises: hispeed at the 20 ms sample, max at the 40 ms sample — the
  // floor hold is anchored at t = 40 ms.
  sim_.run_until(sim::SimTime::millis(61));
  ASSERT_EQ(policy_->cur_khz(), 2'100'000u);
  cpu_.cancel(id);
  // min_sample_time is 80 ms from the raise: the 60/80/100 ms samples must
  // not scale down; the 120 ms sample may.
  sim_.run_until(sim::SimTime::millis(110));
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
  sim_.run_until(sim::SimTime::millis(300));
  EXPECT_EQ(policy_->cur_khz(), 300'000u);
}

TEST_F(GovernorTest, InteractiveTracksModerateLoadBelowHispeed) {
  use("interactive");
  // ~240 MHz demand: never trips go_hispeed_load once settled.
  demand(sim::SimTime::millis(20), 4.8e6);
  sim_.run_until(sim::SimTime::seconds(2));
  EXPECT_LE(policy_->cur_khz(), 600'000u);
  EXPECT_GE(policy_->cur_khz(), 300'000u);
}

// --------------------------------------------------------------- schedutil

TEST_F(GovernorTest, SchedutilReachesMaxWhenSaturated) {
  use("schedutil");
  saturate();
  sim_.run_until(sim::SimTime::millis(400));
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(GovernorTest, SchedutilDecaysToMinWhenIdle) {
  use("schedutil");
  const auto id = saturate();
  sim_.run_until(sim::SimTime::millis(400));
  cpu_.cancel(id);
  sim_.run_until(sim_.now() + sim::SimTime::millis(600));
  EXPECT_EQ(policy_->cur_khz(), 300'000u);
}

TEST_F(GovernorTest, SchedutilTracksSteadyUtilWithHeadroom) {
  use("schedutil");
  // ~420 MHz of demand -> util ~0.2 of max -> target ~0.25 * 2.1 GHz
  // = 525 MHz -> snaps to 600 MHz (may hover one OPP higher transiently).
  demand(sim::SimTime::millis(10), 4.2e6);
  sim_.run_until(sim::SimTime::seconds(2));
  EXPECT_GE(policy_->cur_khz(), 600'000u);
  EXPECT_LE(policy_->cur_khz(), 900'000u);
}

// --------------------------------------------------------- trivial/userspace

TEST_F(GovernorTest, PerformancePinsMaxDespiteIdle) {
  use("performance");
  sim_.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(GovernorTest, PowersavePinsMinDespiteSaturation) {
  use("powersave");
  saturate();
  sim_.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(policy_->cur_khz(), 300'000u);
}

TEST_F(GovernorTest, UserspaceHoldsRequestAcrossLimitChanges) {
  use("userspace");
  auto* gov = policy_->governor();
  ASSERT_TRUE(gov->supports_setspeed());
  ASSERT_TRUE(gov->set_speed(900'000).ok());
  EXPECT_EQ(policy_->cur_khz(), 900'000u);
  policy_->set_min(1'200'000);
  EXPECT_EQ(policy_->cur_khz(), 1'200'000u);  // clamped up
  policy_->set_min(300'000);
  gov->limits_changed();
  // The original request is re-applied once limits allow it again.
  EXPECT_EQ(policy_->cur_khz(), 900'000u);
}

TEST_F(GovernorTest, SamplingGovernorsSurviveGovernorSwitchStorm) {
  use("ondemand");
  saturate();
  for (const char* name : {"interactive", "schedutil", "conservative", "ondemand",
                           "performance", "powersave", "ondemand"}) {
    ASSERT_TRUE(policy_->set_governor(name).ok());
    sim_.run_until(sim_.now() + sim::SimTime::millis(50));
  }
  // Ends on ondemand under saturation: must be at max and still sampling.
  sim_.run_until(sim_.now() + sim::SimTime::millis(100));
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

}  // namespace
}  // namespace vafs::governors
