// Unit tests for the network substrate: bandwidth processes, the LTE RRC
// radio state machine (tail timers, promotion cost), and the downloader's
// byte-arrival / CPU-charging behaviour.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "cpu/cpu_model.h"
#include "net/bandwidth.h"
#include "net/downloader.h"
#include "net/radio.h"
#include "simcore/simulator.h"

namespace vafs::net {
namespace {

// ------------------------------------------------------------- bandwidth

TEST(ConstantBandwidth, NeverChanges) {
  ConstantBandwidth bw(10.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::zero()), 10.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(100)), 10.0);
  EXPECT_EQ(bw.next_change(sim::SimTime::seconds(5)), sim::SimTime::max());
}

TEST(MarkovBandwidth, StaysWithinBounds) {
  MarkovBandwidth::Params params;
  params.mean_mbps = 10;
  params.min_mbps = 2;
  params.max_mbps = 30;
  MarkovBandwidth bw(params, sim::Rng(5));
  for (int s = 0; s < 600; ++s) {
    const double mbps = bw.current_mbps(sim::SimTime::seconds(s));
    EXPECT_GE(mbps, 2.0);
    EXPECT_LE(mbps, 30.0);
  }
}

TEST(MarkovBandwidth, MeanRevertsRoughly) {
  MarkovBandwidth::Params params;
  params.mean_mbps = 10;
  params.min_mbps = 1;
  params.max_mbps = 100;
  MarkovBandwidth bw(params, sim::Rng(6));
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += bw.current_mbps(sim::SimTime::millis(200) * i);
  }
  const double mean = sum / n;
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 20.0);
}

TEST(MarkovBandwidth, NextChangeIsInTheFuture) {
  MarkovBandwidth bw({}, sim::Rng(7));
  sim::SimTime t = sim::SimTime::zero();
  for (int i = 0; i < 100; ++i) {
    const sim::SimTime change = bw.next_change(t);
    EXPECT_GT(change, t);
    t = change;
  }
}

TEST(MarkovBandwidth, DeterministicForSameSeed) {
  MarkovBandwidth a({}, sim::Rng(8));
  MarkovBandwidth b({}, sim::Rng(8));
  for (int s = 0; s < 100; ++s) {
    EXPECT_EQ(a.current_mbps(sim::SimTime::seconds(s)), b.current_mbps(sim::SimTime::seconds(s)));
  }
}

TEST(TraceBandwidth, StepFunctionReplay) {
  TraceBandwidth bw({{sim::SimTime::zero(), 5.0},
                     {sim::SimTime::seconds(10), 1.0},
                     {sim::SimTime::seconds(20), 8.0}},
                    /*loop=*/false);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(3)), 5.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(10)), 1.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(15)), 1.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(25)), 8.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(500)), 8.0);  // holds last
  EXPECT_EQ(bw.next_change(sim::SimTime::seconds(3)), sim::SimTime::seconds(10));
  EXPECT_EQ(bw.next_change(sim::SimTime::seconds(25)), sim::SimTime::max());
}

TEST(TraceBandwidth, LoopingWrapsAround) {
  TraceBandwidth bw({{sim::SimTime::zero(), 5.0}, {sim::SimTime::seconds(10), 1.0}},
                    /*loop=*/true);
  // Loop period = 20 s (last step extended by the previous step length).
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(3)), 5.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(23)), 5.0);
  EXPECT_EQ(bw.current_mbps(sim::SimTime::seconds(33)), 1.0);
}

// ------------------------------------------------------------------ radio

class RadioTest : public ::testing::Test {
 protected:
  RadioTest() : radio_(sim_, RadioParams::lte()) {}
  sim::Simulator sim_;
  RadioModel radio_;
};

TEST_F(RadioTest, StartsIdle) {
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
  EXPECT_EQ(radio_.promotion_count(), 0u);
}

TEST_F(RadioTest, PromotionTakesConfiguredDelay) {
  sim::SimTime ready_at;
  radio_.acquire([&] { ready_at = sim_.now(); });
  EXPECT_EQ(radio_.state(), RadioState::kPromotion);
  sim_.run();
  EXPECT_EQ(ready_at, sim::SimTime::millis(260));
  EXPECT_EQ(radio_.state(), RadioState::kActive);
  EXPECT_EQ(radio_.promotion_count(), 1u);
}

TEST_F(RadioTest, ReleaseWalksTheTail) {
  radio_.acquire(nullptr);
  sim_.run();
  radio_.release();
  EXPECT_EQ(radio_.state(), RadioState::kTailCr);
  sim_.run_until(sim_.now() + sim::SimTime::millis(250));
  EXPECT_EQ(radio_.state(), RadioState::kTailDrx);
  sim_.run_until(sim_.now() + sim::SimTime::seconds(10));
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
}

TEST_F(RadioTest, AcquireDuringTailSkipsPromotion) {
  radio_.acquire(nullptr);
  sim_.run();
  radio_.release();
  sim_.run_until(sim_.now() + sim::SimTime::seconds(2));  // deep in DRX tail
  ASSERT_EQ(radio_.state(), RadioState::kTailDrx);

  bool ready = false;
  radio_.acquire([&] { ready = true; });
  EXPECT_TRUE(ready);  // immediate: still connected
  EXPECT_EQ(radio_.state(), RadioState::kActive);
  EXPECT_EQ(radio_.promotion_count(), 1u);  // no second promotion

  // And the stale tail timer must not demote us while held.
  sim_.run_until(sim_.now() + sim::SimTime::seconds(30));
  EXPECT_EQ(radio_.state(), RadioState::kActive);
}

TEST_F(RadioTest, RefcountedConcurrentTransfers) {
  radio_.acquire(nullptr);
  sim_.run();
  radio_.acquire(nullptr);  // second transfer joins
  EXPECT_EQ(radio_.active_transfers(), 2u);
  radio_.release();
  EXPECT_EQ(radio_.state(), RadioState::kActive);  // one still holds
  radio_.release();
  EXPECT_EQ(radio_.state(), RadioState::kTailCr);
}

TEST_F(RadioTest, AcquireDuringPromotionJoins) {
  int ready = 0;
  radio_.acquire([&] { ++ready; });
  sim_.run_until(sim::SimTime::millis(100));
  radio_.acquire([&] { ++ready; });
  EXPECT_EQ(ready, 0);
  sim_.run();
  EXPECT_EQ(ready, 2);
  EXPECT_EQ(radio_.promotion_count(), 1u);
}

TEST_F(RadioTest, ReleaseWithinPromotionWindowStillTails) {
  radio_.acquire(nullptr);
  radio_.release();  // before promotion completes
  sim_.run();
  // The promotion completes, finds nobody holding, and starts the tail;
  // eventually the radio must return to IDLE rather than hang ACTIVE.
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
}

TEST_F(RadioTest, EnergyIntegratesStatePowers) {
  const RadioParams p = RadioParams::lte();
  radio_.acquire(nullptr);
  sim_.run();  // 260 ms promotion
  sim_.run_until(sim_.now() + sim::SimTime::seconds(1));  // 1 s active
  radio_.release();
  sim_.run_until(sim_.now() + sim::SimTime::millis(100));  // 100 ms tail-CR
  const double expected = 0.26 * p.promotion_mw + 1.0 * p.active_mw + 0.1 * p.tail_cr_mw;
  EXPECT_NEAR(radio_.energy_mj(), expected, 1e-6);
}

TEST_F(RadioTest, ResidencyAccounting) {
  radio_.acquire(nullptr);
  sim_.run();
  radio_.release();
  sim_.run_until(sim::SimTime::seconds(30));
  EXPECT_EQ(radio_.time_in(RadioState::kPromotion), sim::SimTime::millis(260));
  EXPECT_EQ(radio_.time_in(RadioState::kTailCr), sim::SimTime::millis(200));
  EXPECT_EQ(radio_.time_in(RadioState::kTailDrx), sim::SimTime::seconds_f(9.8));
  EXPECT_GT(radio_.time_in(RadioState::kIdle), sim::SimTime::seconds(19));
}

TEST_F(RadioTest, ReacquireDuringTailCrNeverEntersDrx) {
  // A fetch that lands inside the continuous-reception tail resumes from
  // TAIL_CR: the DRX stage must never be entered, and the CR dwell is
  // exactly the time spent waiting, not the full t_cr.
  radio_.acquire(nullptr);
  sim_.run();
  radio_.release();
  sim_.run_until(sim_.now() + sim::SimTime::millis(120));  // inside t_cr = 200 ms
  ASSERT_EQ(radio_.state(), RadioState::kTailCr);
  radio_.acquire(nullptr);
  EXPECT_EQ(radio_.state(), RadioState::kActive);
  sim_.run_until(sim_.now() + sim::SimTime::seconds(30));
  EXPECT_EQ(radio_.time_in(RadioState::kTailCr), sim::SimTime::millis(120));
  EXPECT_EQ(radio_.time_in(RadioState::kTailDrx), sim::SimTime::zero());
  EXPECT_EQ(radio_.state(), RadioState::kActive);  // still held
}

TEST_F(RadioTest, ReacquireDuringDrxCutsTheDwellShort) {
  radio_.acquire(nullptr);
  sim_.run();
  radio_.release();
  sim_.run_until(sim_.now() + sim::SimTime::millis(200) + sim::SimTime::seconds(3));
  ASSERT_EQ(radio_.state(), RadioState::kTailDrx);
  radio_.acquire(nullptr);
  radio_.release();
  sim_.run();  // walk the restarted tail back to idle
  ASSERT_EQ(radio_.state(), RadioState::kIdle);
  // The interrupted DRX dwell (3 s) plus one full restarted dwell.
  EXPECT_EQ(radio_.time_in(RadioState::kTailDrx),
            sim::SimTime::seconds(3) + sim::SimTime::seconds_f(9.8));
  // The tail restarts from the top: two full CR dwells.
  EXPECT_EQ(radio_.time_in(RadioState::kTailCr), sim::SimTime::millis(200) * 2);
  EXPECT_EQ(radio_.promotion_count(), 1u);  // never went through IDLE
}

TEST(RadioDwellTimes, FullCycleMatchesEveryProfileExactly) {
  // One acquire/hold/release cycle per profile: each state's dwell must
  // equal that profile's timer, exactly — these dwells are what make
  // radio energy depend on fetch *timing*, so they are load-bearing for
  // every energy number in the evaluation.
  const std::pair<const char*, RadioParams> profiles[] = {
      {"lte", RadioParams::lte()},
      {"wifi", RadioParams::wifi()},
      {"umts", RadioParams::umts_3g()},
  };
  for (const auto& [name, params] : profiles) {
    SCOPED_TRACE(name);
    sim::Simulator sim;
    RadioModel radio(sim, params);
    radio.acquire(nullptr);
    sim.run();  // promotion completes
    const sim::SimTime hold = sim::SimTime::seconds(1);
    sim.run_until(sim.now() + hold);
    radio.release();
    sim.run();  // tail walks to idle
    ASSERT_EQ(radio.state(), RadioState::kIdle);
    EXPECT_EQ(radio.time_in(RadioState::kPromotion), params.promotion_delay);
    EXPECT_EQ(radio.time_in(RadioState::kActive), hold);
    EXPECT_EQ(radio.time_in(RadioState::kTailCr), params.tail_cr);
    EXPECT_EQ(radio.time_in(RadioState::kTailDrx), params.tail_drx);
    // And the residency-weighted energy follows from exactly those dwells.
    const double expected_mj = params.promotion_delay.as_seconds_f() * params.promotion_mw +
                               hold.as_seconds_f() * params.active_mw +
                               params.tail_cr.as_seconds_f() * params.tail_cr_mw +
                               params.tail_drx.as_seconds_f() * params.tail_drx_mw;
    EXPECT_NEAR(radio.energy_mj(), expected_mj, 1e-6);
  }
}

TEST(RadioParamsTest, WifiProfileIsCheaper) {
  const RadioParams lte = RadioParams::lte();
  const RadioParams wifi = RadioParams::wifi();
  EXPECT_LT(wifi.active_mw, lte.active_mw);
  EXPECT_LT(wifi.promotion_delay, lte.promotion_delay);
  EXPECT_LT(wifi.tail_drx, lte.tail_drx);
}

// -------------------------------------------------------------- downloader

class DownloaderTest : public ::testing::Test {
 protected:
  DownloaderTest()
      : radio_(sim_, RadioParams::lte()),
        bw_(8.0),  // 8 Mbps = 1 MB/s
        cpu_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()) {}

  sim::Simulator sim_;
  RadioModel radio_;
  ConstantBandwidth bw_;
  cpu::CpuModel cpu_;
};

TEST_F(DownloaderTest, FetchTimingWithoutCpu) {
  Downloader dl(sim_, radio_, bw_, nullptr);
  FetchResult result;
  bool done = false;
  dl.fetch(1'000'000, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  sim_.run();
  ASSERT_TRUE(done);
  // 260 ms promotion + 70 ms RTT + 1 MB at 1 MB/s = 1 s.
  EXPECT_EQ(result.first_byte, sim::SimTime::millis(330));
  EXPECT_EQ(result.completed, sim::SimTime::millis(1330));
  EXPECT_NEAR(result.throughput_mbps(), 8.0, 0.01);
  // run() drained the tail timers too: the radio must be back in IDLE.
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
}

TEST_F(DownloaderTest, CpuCyclesChargedForPayload) {
  cpu_.set_frequency(2'100'000);  // plenty of headroom
  Downloader dl(sim_, radio_, bw_, &cpu_);
  bool done = false;
  dl.fetch(1'000'000, [&](const FetchResult&) { done = true; });
  sim_.run();
  ASSERT_TRUE(done);
  // 8 cycles/B * 1 MB + 2e6 request cycles ~ 1e7 cycles.
  const double busy_s = cpu_.total_busy_time().as_seconds_f();
  const double cycles = busy_s * 2.1e9;
  EXPECT_NEAR(cycles, 8e6 + 2e6, 1e6);
}

TEST_F(DownloaderTest, CompletionGatedOnFinalCpuChunk) {
  // At min frequency the protocol processing of the last chunk takes
  // non-zero time: completion must come strictly after the last byte.
  Downloader dl(sim_, radio_, bw_, &cpu_);
  FetchResult result;
  dl.fetch(1'000'000, [&](const FetchResult& r) { result = r; });
  sim_.run();
  EXPECT_GT(result.completed, sim::SimTime::millis(1330));
}

TEST_F(DownloaderTest, ConcurrentFetchesShareBandwidth) {
  Downloader dl(sim_, radio_, bw_, nullptr);
  sim::SimTime done_a, done_b;
  dl.fetch(500'000, [&](const FetchResult& r) { done_a = r.completed; });
  dl.fetch(500'000, [&](const FetchResult& r) { done_b = r.completed; });
  sim_.run();
  // Both receive 0.5 MB/s: each takes 1 s of transfer after first byte.
  EXPECT_EQ(done_a, sim::SimTime::millis(1330));
  EXPECT_EQ(done_b, sim::SimTime::millis(1330));
}

TEST_F(DownloaderTest, SequentialFetchReusesConnection) {
  Downloader dl(sim_, radio_, bw_, nullptr);
  sim::SimTime first_done;
  sim::SimTime second_first_byte;
  dl.fetch(1'000'000, [&](const FetchResult& r) {
    first_done = r.completed;
    dl.fetch(1'000'000, [&](const FetchResult& r2) { second_first_byte = r2.first_byte; });
  });
  sim_.run();
  // Second fetch: no promotion (radio in tail), just the RTT.
  EXPECT_EQ(second_first_byte - first_done, sim::SimTime::millis(70));
  EXPECT_EQ(radio_.promotion_count(), 1u);
}

TEST_F(DownloaderTest, ZeroByteFetchCompletes) {
  Downloader dl(sim_, radio_, bw_, nullptr);
  bool done = false;
  dl.fetch(0, [&](const FetchResult& r) {
    done = true;
    EXPECT_EQ(r.bytes, 0u);
  });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(radio_.active_transfers(), 0u);
}

TEST_F(DownloaderTest, VariableBandwidthExactArithmetic) {
  // 8 Mbps for 1 s after first byte, then 4 Mbps: 1.5 MB total =
  // 1 MB in the first second + 0.5 MB at 0.5 MB/s = 1 more second.
  TraceBandwidth trace({{sim::SimTime::zero(), 8.0}, {sim::SimTime::millis(1330), 4.0}},
                       /*loop=*/false);
  Downloader dl(sim_, radio_, trace, nullptr);
  FetchResult result;
  dl.fetch(1'500'000, [&](const FetchResult& r) { result = r; });
  sim_.run();
  EXPECT_EQ(result.completed, sim::SimTime::millis(2330));
}

TEST_F(DownloaderTest, TotalBytesAccumulate) {
  Downloader dl(sim_, radio_, bw_, nullptr);
  dl.fetch(100, nullptr);
  dl.fetch(200, nullptr);
  sim_.run();
  EXPECT_EQ(dl.total_bytes_fetched(), 300u);
  EXPECT_EQ(dl.inflight(), 0u);
}


// ------------------------------------------------- downloader fault model

/// Deterministic fate script: attempt n gets fates[n] (kOk past the end).
class ScriptedFaultHook final : public FetchFaultHook {
 public:
  ScriptedFaultHook(std::vector<FetchFate> fates,
                    sim::SimTime fail_delay = sim::SimTime::millis(100))
      : fates_(std::move(fates)), fail_delay_(fail_delay) {}

  FetchFate fetch_attempt_fate(sim::SimTime, std::uint64_t, unsigned,
                               sim::SimTime* fail_delay) override {
    const FetchFate fate = next_ < fates_.size() ? fates_[next_++] : FetchFate::kOk;
    if (fate == FetchFate::kFail && fail_delay != nullptr) *fail_delay = fail_delay_;
    return fate;
  }

  std::size_t attempts_seen() const { return next_; }

 private:
  std::vector<FetchFate> fates_;
  sim::SimTime fail_delay_;
  std::size_t next_ = 0;
};

TEST_F(DownloaderTest, InjectedFailureRetriesAndSucceeds) {
  ScriptedFaultHook hook({FetchFate::kFail, FetchFate::kOk});
  DownloaderParams params;
  params.backoff_base = sim::SimTime::millis(200);
  params.backoff_jitter = 0.0;  // deterministic timing for the assertions
  Downloader dl(sim_, radio_, bw_, nullptr, params, &hook);
  FetchResult result;
  dl.fetch(1'000'000, [&](const FetchResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(dl.total_retries(), 1u);
  EXPECT_EQ(dl.failed_fetches(), 0u);
  // Attempt 1: promotion 260 + RTT 70 = 330 ms, injected failure fires
  // 100 ms later (430 ms), backoff 200 ms -> attempt 2 at 630 ms. The
  // radio is still in its tail, so only the RTT precedes the first byte.
  EXPECT_EQ(result.first_byte, sim::SimTime::millis(700));
  EXPECT_EQ(result.completed, sim::SimTime::millis(1700));
  EXPECT_EQ(radio_.state(), RadioState::kIdle);  // every hold released
}

TEST_F(DownloaderTest, ExhaustedAttemptsCompleteWithError) {
  ScriptedFaultHook hook({FetchFate::kFail, FetchFate::kFail, FetchFate::kFail});
  DownloaderParams params;
  params.max_attempts = 3;
  params.backoff_jitter = 0.0;
  Downloader dl(sim_, radio_, bw_, nullptr, params, &hook);
  FetchResult result;
  bool done = false;
  dl.fetch(1'000'000, [&](const FetchResult& r) {
    result = r;
    done = true;
  });
  sim_.run();
  ASSERT_TRUE(done);  // the fetch completes (with an error) instead of wedging
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, FetchError::kInjected);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(dl.total_retries(), 2u);
  EXPECT_EQ(dl.failed_fetches(), 1u);
  EXPECT_EQ(dl.inflight(), 0u);
  EXPECT_EQ(radio_.active_transfers(), 0u);
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
}

TEST_F(DownloaderTest, TimeoutRescuesHungAttempt) {
  ScriptedFaultHook hook({FetchFate::kHang, FetchFate::kOk});
  DownloaderParams params;
  params.attempt_timeout = sim::SimTime::millis(500);
  params.backoff_base = sim::SimTime::millis(200);
  params.backoff_jitter = 0.0;
  Downloader dl(sim_, radio_, bw_, nullptr, params, &hook);
  FetchResult result;
  // 250 KB = 250 ms at 8 Mbps: a healthy attempt fits inside the 500 ms
  // watchdog with room to spare.
  dl.fetch(250'000, [&](const FetchResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(dl.total_timeouts(), 1u);
  EXPECT_EQ(dl.total_retries(), 1u);
  // Hang: nothing arrives until the 500 ms watchdog, then 200 ms backoff;
  // retry at 700 ms sees the radio mid-tail (RTT only).
  EXPECT_EQ(result.first_byte, sim::SimTime::millis(770));
  EXPECT_EQ(result.completed, sim::SimTime::millis(1020));
  EXPECT_EQ(radio_.state(), RadioState::kIdle);
}

TEST_F(DownloaderTest, BackoffGrowsExponentially) {
  ScriptedFaultHook hook({FetchFate::kFail, FetchFate::kFail, FetchFate::kOk},
                         sim::SimTime::zero());
  DownloaderParams params;
  params.max_attempts = 3;
  params.backoff_base = sim::SimTime::millis(100);
  params.backoff_factor = 2.0;
  params.backoff_jitter = 0.0;
  Downloader dl(sim_, radio_, bw_, nullptr, params, &hook);
  FetchResult result;
  dl.fetch(1'000'000, [&](const FetchResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 3u);
  // Fail at 330 ms (zero fail delay), +100 ms backoff -> attempt 2 begins
  // receive at 500 ms and fails, +200 ms backoff -> attempt 3 first byte
  // at 770 ms.
  EXPECT_EQ(result.first_byte, sim::SimTime::millis(770));
}

TEST_F(DownloaderTest, BackoffJitterStaysWithinBounds) {
  DownloaderParams params;
  params.backoff_base = sim::SimTime::millis(200);
  params.backoff_factor = 1.0;
  params.backoff_jitter = 0.25;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    sim::Simulator sim;
    RadioModel radio(sim, RadioParams::lte());
    ConstantBandwidth bw(8.0);
    ScriptedFaultHook hook({FetchFate::kFail}, sim::SimTime::zero());
    Downloader dl(sim, radio, bw, nullptr, params, &hook, seed);
    FetchResult result;
    dl.fetch(100'000, [&](const FetchResult& r) { result = r; });
    sim.run();
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.attempts, 2u);
    // first_byte = 330 ms fail point + backoff + RTT; backoff within
    // [150, 250] ms of the 200 ms base.
    const auto backoff = result.first_byte - sim::SimTime::millis(400);
    EXPECT_GE(backoff, sim::SimTime::millis(150));
    EXPECT_LE(backoff, sim::SimTime::millis(250));
  }
}

TEST_F(DownloaderTest, BackoffJitterIsKeyedPerFetchAttempt) {
  // Regression for the fleet RNG-keying contract: a retry's backoff jitter
  // is a pure function of (retry seed, fetch id, attempt). With the old
  // sequential jitter stream, fetch 1's retry consumed a draw and shifted
  // fetch 2's backoff; the two timelines below must now agree exactly.
  DownloaderParams params;
  params.backoff_base = sim::SimTime::millis(200);
  params.backoff_jitter = 0.25;
  const auto fetch2_duration = [&](std::vector<FetchFate> fates) {
    sim::Simulator sim;
    RadioModel radio(sim, RadioParams::lte());
    ConstantBandwidth bw(8.0);
    ScriptedFaultHook hook(std::move(fates), sim::SimTime::millis(100));
    Downloader dl(sim, radio, bw, nullptr, params, &hook, /*retry_seed=*/77);
    FetchResult second;
    dl.fetch(500'000, [&](const FetchResult&) {
      dl.fetch(500'000, [&](const FetchResult& r) { second = r; });
    });
    sim.run();
    EXPECT_TRUE(second.ok);
    EXPECT_EQ(second.attempts, 2u);
    return second.completed - second.started;
  };
  // Run A: fetch 1 clean; fetch 2 fails once then succeeds.
  const sim::SimTime a = fetch2_duration({FetchFate::kOk, FetchFate::kFail, FetchFate::kOk});
  // Run B: fetch 1 retries once first; fetch 2's script is unchanged.
  const sim::SimTime b =
      fetch2_duration({FetchFate::kFail, FetchFate::kOk, FetchFate::kFail, FetchFate::kOk});
  EXPECT_EQ(a, b);
}

TEST_F(DownloaderTest, ConcurrentFetchSurvivesPeerRetry) {
  // One fetch fails and retries while another is mid-flight: the survivor
  // must finish with exact byte accounting despite the pump sharing.
  ScriptedFaultHook hook({FetchFate::kOk, FetchFate::kFail, FetchFate::kOk});
  DownloaderParams params;
  params.backoff_jitter = 0.0;
  Downloader dl(sim_, radio_, bw_, nullptr, params, &hook);
  FetchResult a, b;
  dl.fetch(500'000, [&](const FetchResult& r) { a = r; });
  dl.fetch(500'000, [&](const FetchResult& r) { b = r; });
  sim_.run();
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(a.attempts, 1u);
  EXPECT_EQ(b.attempts, 2u);
  EXPECT_EQ(dl.total_bytes_fetched(), 1'000'000u);
  EXPECT_EQ(dl.inflight(), 0u);
  EXPECT_EQ(radio_.active_transfers(), 0u);
}

TEST_F(DownloaderTest, DisabledTimeoutArmsNoTimer) {
  // Default params: no fault hook, timeout disabled. The event count of a
  // fetch must match the pre-retry downloader exactly (no watchdog timer
  // in the schedule).
  Downloader dl(sim_, radio_, bw_, nullptr);
  bool done = false;
  dl.fetch(1'000'000, [&](const FetchResult& r) {
    done = true;
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(r.error, FetchError::kNone);
  });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dl.total_retries(), 0u);
  EXPECT_EQ(dl.total_timeouts(), 0u);
}

TEST(FetchErrorNames, Stable) {
  EXPECT_STREQ(fetch_error_name(FetchError::kNone), "none");
  EXPECT_STREQ(fetch_error_name(FetchError::kTimeout), "timeout");
  EXPECT_STREQ(fetch_error_name(FetchError::kInjected), "injected");
}

}  // namespace
}  // namespace vafs::net
