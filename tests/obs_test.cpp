// Property tests for the observability layer (src/obs/):
//
//   - histogram / timeline merges are exactly associative and
//     order-independent (integral counts, total-order sample sort);
//   - trace digests are invariant under the runner's --jobs width;
//   - attaching a tracer changes *nothing* about a session's results
//     (observer effect = 0, bit-for-bit);
//   - span streams are well-formed even under fuzzed fault plans;
//   - digest-only (ring_capacity = 0) and full-ring tracers agree.
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "exp/grid.h"
#include "exp/runner.h"
#include "obs/export.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "simcore/rng.h"

namespace {

using namespace vafs;

// ---------------------------------------------------------------------------
// Histogram / series / timeline merge algebra.

TEST(Histogram, EdgeBinsSaturate) {
  obs::FixedBinHistogram h(obs::HistogramSpec{0.0, 10.0, 10});
  h.add(-5.0);   // below lo -> bin 0
  h.add(0.0);    // bin 0
  h.add(9.99);   // bin 9
  h.add(10.0);   // at hi -> bin 9 (saturating)
  h.add(1e12);   // far above -> bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 3u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, MergeIsExactlyAssociativeAndCommutative) {
  const obs::HistogramSpec spec{0.0, 100.0, 25};
  sim::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    obs::FixedBinHistogram a(spec), b(spec), c(spec);
    for (obs::FixedBinHistogram* h : {&a, &b, &c}) {
      const int n = static_cast<int>(rng.next_u64() % 200);
      for (int i = 0; i < n; ++i) h->add(rng.uniform(-20.0, 120.0));
    }

    // (a + b) + c
    obs::FixedBinHistogram left(spec);
    left.merge(a);
    left.merge(b);
    left.merge(c);
    // a + (b + c), built in the other association
    obs::FixedBinHistogram bc(spec);
    bc.merge(b);
    bc.merge(c);
    obs::FixedBinHistogram right(spec);
    right.merge(a);
    right.merge(bc);
    EXPECT_TRUE(left == right);

    // c + b + a — commuted
    obs::FixedBinHistogram commuted(spec);
    commuted.merge(c);
    commuted.merge(b);
    commuted.merge(a);
    EXPECT_TRUE(left == commuted);
  }
}

std::vector<obs::Sample> merged_samples(const std::vector<obs::Series>& parts,
                                        const std::vector<std::size_t>& order) {
  obs::Series acc;
  for (const std::size_t i : order) acc.merge(parts[i]);
  return acc.samples();
}

TEST(Series, MergeIsOrderIndependent) {
  sim::Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    // Three series with overlapping time ranges and duplicate timestamps
    // (the case plain time-sorting cannot disambiguate — the total order
    // over (t, value-bits) can).
    std::vector<obs::Series> parts(3);
    for (auto& s : parts) {
      const int n = 1 + static_cast<int>(rng.next_u64() % 50);
      for (int i = 0; i < n; ++i) {
        const auto t = sim::SimTime::micros(static_cast<std::int64_t>(rng.next_u64() % 1000));
        s.push(t, rng.uniform(0.0, 5.0));
      }
    }
    const auto base = merged_samples(parts, {0, 1, 2});
    EXPECT_EQ(base, merged_samples(parts, {2, 1, 0}));
    EXPECT_EQ(base, merged_samples(parts, {1, 0, 2}));
    EXPECT_TRUE(std::is_sorted(base.begin(), base.end(), [](const auto& x, const auto& y) {
      return x.t_us < y.t_us;
    }));
  }
}

TEST(Timeline, MergeCombinesEverySeries) {
  obs::Timeline a, b;
  a.push(obs::SeriesId::kFreqKhz, sim::SimTime::millis(1), 600000.0);
  b.push(obs::SeriesId::kFreqKhz, sim::SimTime::millis(2), 1800000.0);
  b.push(obs::SeriesId::kBufferSeconds, sim::SimTime::millis(3), 4.5);
  a.merge(b);
  EXPECT_EQ(a.at(obs::SeriesId::kFreqKhz).samples().size(), 2u);
  EXPECT_EQ(a.at(obs::SeriesId::kBufferSeconds).samples().size(), 1u);
  EXPECT_EQ(a.at(obs::SeriesId::kFreqKhz).hist().total(), 2u);
}

// ---------------------------------------------------------------------------
// Digest determinism across the runner's parallelism.

core::SessionConfig small_session(const std::string& governor) {
  core::SessionConfig config;
  config.governor = governor;
  config.media_duration = sim::SimTime::seconds(8);
  config.net = core::NetProfile::kFair;
  return config;
}

TEST(TraceDigest, InvariantUnderJobs) {
  exp::ExperimentGrid grid(small_session("ondemand"));
  grid.governors({"ondemand", "vafs"});

  exp::RunOptions serial;
  serial.jobs = 1;
  serial.seeds = {101, 202};
  serial.trace = true;
  exp::RunOptions parallel = serial;
  parallel.jobs = 4;

  const exp::ResultSet a = exp::run_grid(grid, serial);
  const exp::ResultSet b = exp::run_grid(grid, parallel);
  ASSERT_EQ(a.all().size(), b.all().size());
  for (std::size_t s = 0; s < a.all().size(); ++s) {
    const auto& ra = a.all()[s];
    const auto& rb = b.all()[s];
    ASSERT_EQ(ra.runs.size(), rb.runs.size());
    for (std::size_t i = 0; i < ra.runs.size(); ++i) {
      EXPECT_NE(ra.runs[i].trace_digest, 0u);
      EXPECT_EQ(ra.runs[i].trace_digest, rb.runs[i].trace_digest)
          << ra.spec.id << " seed index " << i;
      EXPECT_EQ(ra.runs[i].trace_events, rb.runs[i].trace_events);
    }
  }
}

// ---------------------------------------------------------------------------
// Observer effect = 0: a session with a tracer attached must produce a
// bit-identical SessionResult to the same session without one.

void expect_results_identical(const core::SessionResult& a, const core::SessionResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.wall.as_micros(), b.wall.as_micros());
  EXPECT_EQ(a.played.as_micros(), b.played.as_micros());
  EXPECT_EQ(a.energy.cpu_mj, b.energy.cpu_mj);          // exact, not near
  EXPECT_EQ(a.energy.total_mj(), b.energy.total_mj());  // exact
  EXPECT_EQ(a.qoe.frames_presented, b.qoe.frames_presented);
  EXPECT_EQ(a.qoe.frames_dropped, b.qoe.frames_dropped);
  EXPECT_EQ(a.qoe.rebuffer_events, b.qoe.rebuffer_events);
  EXPECT_EQ(a.freq_transitions, b.freq_transitions);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);  // exact
  EXPECT_EQ(a.residency, b.residency);          // exact, element-wise
  EXPECT_EQ(a.vafs_plans, b.vafs_plans);
  EXPECT_EQ(a.vafs_setspeed_writes, b.vafs_setspeed_writes);
  EXPECT_EQ(a.fault_windows, b.fault_windows);
  EXPECT_EQ(a.injected_fetch_failures, b.injected_fetch_failures);
  EXPECT_EQ(a.injected_sysfs_errors, b.injected_sysfs_errors);
  EXPECT_EQ(a.vafs_fallback_entries, b.vafs_fallback_entries);
}

TEST(ObserverEffect, TracerAttachedVsDetachedBitIdentical) {
  for (const char* governor : {"ondemand", "vafs"}) {
    SCOPED_TRACE(governor);
    core::SessionConfig config = small_session(governor);
    config.fault = fault::FaultPlanConfig::mild();  // exercise injector paths too

    const core::SessionResult detached = core::run_session(config);

    obs::Tracer tracer;
    core::SessionHooks hooks;
    hooks.tracer = &tracer;
    const core::SessionResult attached = core::run_session(config, hooks);

    expect_results_identical(detached, attached);
    EXPECT_GT(attached.trace_events, 0u);
    EXPECT_EQ(detached.trace_events, 0u);  // zeroed without a tracer
  }
}

// ---------------------------------------------------------------------------
// Span well-formedness under fuzzed fault plans.

fault::FaultPlanConfig fuzzed_plan(sim::Rng* rng) {
  fault::FaultPlanConfig plan;
  plan.outage_rate_per_min = rng->uniform(0.0, 4.0);
  plan.collapse_rate_per_min = rng->uniform(0.0, 4.0);
  plan.fetch_failure_prob = rng->uniform(0.0, 0.3);
  plan.fetch_hang_prob = rng->uniform(0.0, 0.1);
  plan.decode_spike_rate_per_min = rng->uniform(0.0, 4.0);
  plan.sysfs_fault_rate_per_min = rng->uniform(0.0, 4.0);
  plan.thermal_cap_rate_per_min = rng->uniform(0.0, 2.0);
  return plan;
}

/// Walks the retained event stream checking span discipline:
///   - sync begin/end pairs nest as a stack per track, depth never
///     negative, and every span still open at kSessionEnd was opened;
///   - async begin/end pairs match by id, no id opened twice, no end
///     without a begin.
void check_span_stream(const obs::Tracer& tracer) {
  ASSERT_EQ(tracer.dropped(), 0u) << "corpus session overflowed the ring";
  std::map<std::pair<obs::Track, std::uint64_t>, int> async_open;  // (track, id) -> count
  int sync_depth[obs::kTrackCount] = {};
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const obs::TraceEvent& ev = tracer.event(i);
    const obs::EventInfo& info = obs::event_info(ev.kind);
    const auto track_index = static_cast<std::size_t>(info.track);
    switch (info.phase) {
      case obs::Phase::kBegin:
        ++sync_depth[track_index];
        break;
      case obs::Phase::kEnd:
        --sync_depth[track_index];
        ASSERT_GE(sync_depth[track_index], 0)
            << info.name << " at t=" << ev.t_us << " closes more spans than were opened";
        break;
      case obs::Phase::kAsyncBegin: {
        int& open = async_open[{info.track, ev.a}];
        ASSERT_LE(open, 1) << info.name << " id " << ev.a << " opened while already open twice";
        ++open;
        break;
      }
      case obs::Phase::kAsyncEnd: {
        int& open = async_open[{info.track, ev.a}];
        ASSERT_GT(open, 0) << info.name << " id " << ev.a << " ended but was never begun";
        --open;
        break;
      }
      case obs::Phase::kInstant:
      case obs::Phase::kComplete:
        break;
    }
  }
  // The session span itself must have closed.
  EXPECT_EQ(sync_depth[static_cast<std::size_t>(obs::Track::kSession)], 0);
  EXPECT_EQ(sync_depth[static_cast<std::size_t>(obs::Track::kWatchdog)], 0);
}

TEST(SpanNesting, WellFormedUnderFuzzedFaultPlans) {
  sim::Rng rng(20260806);
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE(round);
    core::SessionConfig config = small_session(round % 2 == 0 ? "vafs" : "ondemand");
    config.seed = rng.next_u64();
    config.fault = fuzzed_plan(&rng);

    obs::Tracer tracer;
    core::SessionHooks hooks;
    hooks.tracer = &tracer;
    core::run_session(config, hooks);
    check_span_stream(tracer);
  }
}

// ---------------------------------------------------------------------------
// Digest-only mode and hex round-tripping.

TEST(TraceDigest, DigestOnlyModeMatchesFullRing) {
  const core::SessionConfig config = small_session("vafs");

  obs::Tracer full;  // default ring
  core::SessionHooks hooks;
  hooks.tracer = &full;
  core::run_session(config, hooks);

  obs::Tracer digest_only(obs::Tracer::Config{0});
  hooks.tracer = &digest_only;
  core::run_session(config, hooks);

  EXPECT_EQ(full.digest(), digest_only.digest());
  EXPECT_EQ(full.recorded(), digest_only.recorded());
  EXPECT_EQ(full.checkpoints(), digest_only.checkpoints());
  EXPECT_EQ(digest_only.size(), 0u);  // nothing stored
  EXPECT_EQ(full.dropped(), 0u);
}

TEST(DigestHex, RoundTrips) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{0xCBF29CE484222325ull}, ~std::uint64_t{0}}) {
    const std::string hex = obs::digest_hex(v);
    EXPECT_EQ(hex.size(), 18u);  // "0x" + 16 digits
    std::uint64_t back = 0;
    ASSERT_TRUE(obs::parse_digest_hex(hex, &back));
    EXPECT_EQ(back, v);
  }
  std::uint64_t out = 0;
  EXPECT_TRUE(obs::parse_digest_hex("cbf29ce484222325", &out));  // prefixless
  EXPECT_FALSE(obs::parse_digest_hex("", &out));
  EXPECT_FALSE(obs::parse_digest_hex("0x", &out));
  EXPECT_FALSE(obs::parse_digest_hex("0xgg", &out));
  EXPECT_FALSE(obs::parse_digest_hex("0x11112222333344445", &out));  // 17 digits
}

TEST(TimelineCsv, EmitsEverySampleInSchema) {
  obs::Timeline timeline;
  timeline.push(obs::SeriesId::kFreqKhz, sim::SimTime::millis(5), 600000.0);
  timeline.push(obs::SeriesId::kBufferSeconds, sim::SimTime::millis(7), 2.25);
  std::ostringstream out;
  obs::write_timeline_csv(out, timeline);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("series,t_us,value\n", 0), 0u);
  EXPECT_NE(csv.find("freq_khz,5000,600000"), std::string::npos);
  EXPECT_NE(csv.find("buffer_s,7000,2.25"), std::string::npos);
}

}  // namespace
