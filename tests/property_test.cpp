// Property-based tests: parameterized sweeps asserting invariants that
// must hold for *every* point of the configuration space, not just the
// tuned scenarios of the unit tests.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/predictor.h"
#include "core/session.h"
#include "simcore/rng.h"

namespace vafs {
namespace {

// ============================================================ Session grid
//
// Every (governor, quality) cell must satisfy the session invariants:
// accounting conserves time and frames, energy components are positive,
// and residency fractions form a distribution.

using GridParam = std::tuple<std::string, std::size_t>;

class SessionGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(SessionGrid, InvariantsHold) {
  const auto& [governor, rep] = GetParam();

  core::SessionConfig config;
  config.governor = governor;
  config.fixed_rep = rep;
  config.media_duration = sim::SimTime::seconds(40);
  config.net = core::NetProfile::kGood;
  config.seed = 17;

  const core::SessionResult r = core::run_session(config);

  ASSERT_TRUE(r.finished) << governor << " rep " << rep;

  // Frame conservation: every frame is presented or dropped.
  EXPECT_EQ(r.qoe.frames_presented + r.qoe.frames_dropped, 1200u);

  // Time: the session cannot finish faster than the media plays.
  EXPECT_GE(r.wall + sim::SimTime::millis(50), r.played);
  EXPECT_GT(r.played, sim::SimTime::seconds(39));

  // Energy components all positive and the meter is self-consistent.
  EXPECT_GT(r.energy.cpu_mj, 0.0);
  EXPECT_GT(r.energy.radio_mj, 0.0);
  EXPECT_GT(r.energy.display_mj, 0.0);
  EXPECT_NEAR(r.energy.total_mj(), r.energy.cpu_mj + r.energy.radio_mj + r.energy.display_mj,
              1e-9);
  EXPECT_GT(r.energy.mean_mw(), 0.0);

  // Residency fractions form a distribution over the OPPs.
  double total = 0.0;
  for (const auto& [khz, frac] : r.residency) {
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0 + 1e-9);
    total += frac;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);

  // Busy fraction is a fraction.
  EXPECT_GT(r.busy_fraction, 0.0);
  EXPECT_LE(r.busy_fraction, 1.0);

  // The radio connected at least once.
  EXPECT_GE(r.radio_promotions, 1u);

  // Fixed-frequency governors never transition after startup.
  if (governor == "performance" || governor == "powersave") {
    EXPECT_LE(r.freq_transitions, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GovernorQualityMatrix, SessionGrid,
    ::testing::Combine(::testing::Values("performance", "powersave", "ondemand", "conservative",
                                         "interactive", "schedutil", "vafs"),
                       ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                                         std::size_t{3})),
    [](const ::testing::TestParamInfo<GridParam>& p) {
      return std::get<0>(p.param) + "_rep" + std::to_string(std::get<1>(p.param));
    });

// ===================================================== Network-profile grid
//
// QoE-preserving governors must keep QoE across network profiles, and all
// accounting invariants must hold under bursty bandwidth too.

using NetParam = std::tuple<std::string, core::NetProfile>;

class NetworkGrid : public ::testing::TestWithParam<NetParam> {};

TEST_P(NetworkGrid, SessionsCompleteWithBoundedQoeDamage) {
  const auto& [governor, profile] = GetParam();

  core::SessionConfig config;
  config.governor = governor;
  config.fixed_rep = 1;  // 480p: streamable even on the poor profile
  config.media_duration = sim::SimTime::seconds(40);
  config.net = profile;
  config.seed = 23;

  const core::SessionResult r = core::run_session(config);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.qoe.frames_presented + r.qoe.frames_dropped, 1200u);
  EXPECT_LT(r.qoe.drop_ratio(), 0.02) << governor;
  // Startup must not be pathological even on the poor profile.
  EXPECT_LT(r.qoe.startup_delay, sim::SimTime::seconds(30));
}

INSTANTIATE_TEST_SUITE_P(
    GovernorNetworkMatrix, NetworkGrid,
    ::testing::Combine(::testing::Values("ondemand", "schedutil", "vafs"),
                       ::testing::Values(core::NetProfile::kPoor, core::NetProfile::kFair,
                                         core::NetProfile::kGood, core::NetProfile::kExcellent)),
    [](const ::testing::TestParamInfo<NetParam>& p) {
      return std::get<0>(p.param) + "_" +
             core::net_profile_name(std::get<1>(p.param));
    });

// ============================================================== Seed sweep
//
// Different seeds = different content + bandwidth draws. The headline
// ordering (VAFS <= ondemand CPU energy, QoE preserved) must hold for all
// of them, not just the demo seed.

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, VafsNeverLosesToOndemand) {
  core::SessionConfig config;
  config.media_duration = sim::SimTime::seconds(40);
  config.net = core::NetProfile::kFair;
  config.fixed_rep = 2;
  config.seed = GetParam();

  config.governor = "ondemand";
  const core::SessionResult ondemand = core::run_session(config);
  config.governor = "vafs";
  const core::SessionResult vafs = core::run_session(config);

  ASSERT_TRUE(ondemand.finished);
  ASSERT_TRUE(vafs.finished);
  EXPECT_LT(vafs.energy.cpu_mj, ondemand.energy.cpu_mj);
  EXPECT_LT(vafs.qoe.drop_ratio(), 0.02);
  EXPECT_LE(vafs.qoe.rebuffer_events, ondemand.qoe.rebuffer_events + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// ======================================================= Predictor bounds
//
// For any observation stream, a windowed predictor's output must lie
// within [min, max] of everything it has seen (EWMA) or of its window
// (max / quantile).

using PredictorParam = std::tuple<core::PredictorKind, std::size_t, std::uint64_t>;

class PredictorProperty : public ::testing::TestWithParam<PredictorParam> {};

TEST_P(PredictorProperty, PredictionIsBoundedByHistory) {
  const auto& [kind, window, seed] = GetParam();
  core::PredictorConfig config;
  config.kind = kind;
  config.window = window;

  core::CycleDemandPredictor predictor(config);
  sim::Rng rng(seed);

  double all_min = 1e300, all_max = -1e300;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.lognormal(16.0, 0.4);  // ~ cycle-cost magnitudes
    predictor.observe(x);
    all_min = std::min(all_min, x);
    all_max = std::max(all_max, x);

    const double predicted = predictor.predict();
    EXPECT_GE(predicted, all_min * (1 - 1e-12));
    EXPECT_LE(predicted, all_max * (1 + 1e-12));
    EXPECT_GT(predicted, 0.0);
  }
  // After enough samples the APE statistics must be populated and finite.
  EXPECT_EQ(predictor.ape_stats().count(), 499u);
  EXPECT_GE(predictor.mape(), 0.0);
  EXPECT_LT(predictor.mape(), 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindsWindowsSeeds, PredictorProperty,
    ::testing::Combine(::testing::Values(core::PredictorKind::kEwma,
                                         core::PredictorKind::kWindowMax,
                                         core::PredictorKind::kQuantile),
                       ::testing::Values(std::size_t{1}, std::size_t{4}, std::size_t{24},
                                         std::size_t{64}),
                       ::testing::Values(111u, 222u)),
    [](const ::testing::TestParamInfo<PredictorParam>& p) {
      const char* kind = core::predictor_kind_name(std::get<0>(p.param));
      std::string name = kind;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_w" + std::to_string(std::get<1>(p.param)) + "_s" +
             std::to_string(std::get<2>(p.param));
    });

// ==================================================== Margin monotonicity
//
// CPU energy must be monotonically non-decreasing in the VAFS safety
// margin (checked pairwise along a sweep), and the deadline-miss count
// non-increasing on average. This is the F6 ablation as a property.

class MarginSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarginSweep, EnergyGrowsWithMargin) {
  double prev_energy = 0.0;
  for (const double margin : {0.05, 0.25, 0.60}) {
    core::SessionConfig config;
    config.governor = "vafs";
    config.vafs.safety_margin = margin;
    config.media_duration = sim::SimTime::seconds(40);
    config.net = core::NetProfile::kGood;
    config.fixed_rep = 2;
    config.seed = GetParam();
    const core::SessionResult r = core::run_session(config);
    ASSERT_TRUE(r.finished);
    if (prev_energy > 0) {
      EXPECT_GE(r.energy.cpu_mj, prev_energy * 0.98)  // allow 2 % noise
          << "margin " << margin;
    }
    prev_energy = r.energy.cpu_mj;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarginSweep, ::testing::Values(7u, 19u, 42u));

// ===================================================== ABR x governor grid

using AbrParam = std::tuple<std::string, core::AbrKind>;

class AbrGrid : public ::testing::TestWithParam<AbrParam> {};

TEST_P(AbrGrid, AdaptiveSessionsComplete) {
  const auto& [governor, abr] = GetParam();
  core::SessionConfig config;
  config.governor = governor;
  config.abr = abr;
  config.media_duration = sim::SimTime::seconds(40);
  config.net = core::NetProfile::kFair;
  config.seed = 31;

  const core::SessionResult r = core::run_session(config);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.qoe.frames_presented + r.qoe.frames_dropped, 1200u);
  EXPECT_LT(r.qoe.drop_ratio(), 0.05);
  EXPECT_GT(r.qoe.mean_bitrate_kbps, 500.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AbrGrid,
    ::testing::Combine(::testing::Values("ondemand", "vafs"),
                       ::testing::Values(core::AbrKind::kFixed, core::AbrKind::kRate,
                                         core::AbrKind::kBuffer)),
    [](const ::testing::TestParamInfo<AbrParam>& p) {
      return std::get<0>(p.param) + "_" + core::abr_kind_name(std::get<1>(p.param));
    });

}  // namespace
}  // namespace vafs
