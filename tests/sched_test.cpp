// Tests for the cluster-routing substrate: N-cluster placement/penalty
// semantics, the namespaced task-id cancel dispatch, and end-to-end
// big.LITTLE sessions including VAFS's cluster choice.
#include <gtest/gtest.h>

#include "core/session.h"
#include "sched/router.h"
#include "simcore/simulator.h"

namespace vafs::sched {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : big_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()),
        little_(sim_, cpu::OppTable::mobile_little_core(),
                cpu::CpuPowerModel(cpu::PowerModelParams::little_core())),
        router_(big_, little_, 2.0) {}

  sim::Simulator sim_;
  cpu::CpuModel big_;
  cpu::CpuModel little_;
  ClusterRouter router_;
};

TEST_F(RouterTest, NetworkTasksAlwaysGoLittle) {
  router_.submit("http-recv", 1e6, nullptr);
  router_.submit("http-request", 1e6, nullptr);
  EXPECT_TRUE(little_.busy());
  EXPECT_FALSE(big_.busy());
}

TEST_F(RouterTest, DecodeFollowsDecodeCluster) {
  router_.submit("decode", 1e6, nullptr);
  EXPECT_TRUE(big_.busy());

  router_.set_decode_cluster(router_.network_cluster());
  router_.submit("decode", 1e6, nullptr);
  EXPECT_TRUE(little_.busy());
  EXPECT_EQ(router_.decode_tasks_on_big(), 1u);
  EXPECT_EQ(router_.decode_tasks_on_little(), 1u);
  EXPECT_EQ(router_.migrations(), 1u);
}

TEST_F(RouterTest, RedundantClusterSetIsNotAMigration) {
  router_.set_decode_cluster(router_.primary_cluster());
  EXPECT_EQ(router_.migrations(), 0u);
}

TEST_F(RouterTest, LittlePenaltyInflatesCycles) {
  // 3e6 big-cycles at penalty 2.0 -> 6e6 little-cycles. At the LITTLE
  // cluster's 300 MHz boot frequency that is 20 ms.
  sim::SimTime done;
  router_.set_decode_cluster(router_.network_cluster());
  router_.submit("decode", 3e6, [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done.as_micros(), 20'000);
}

TEST_F(RouterTest, BigClusterRunsRawCycles) {
  sim::SimTime done;
  router_.submit("decode", 3e6, [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done.as_micros(), 10'000);  // 3e6 at 300 MHz
}

TEST_F(RouterTest, ClusterSelectionByCapacity) {
  // big: 2.1 GHz / 1.0, little: 1.5 GHz / 2.0.
  EXPECT_EQ(router_.cluster_count(), 2u);
  EXPECT_EQ(router_.primary_cluster(), 0u);
  EXPECT_EQ(router_.network_cluster(), 1u);
  EXPECT_DOUBLE_EQ(router_.capacity_khz(0), 2'100'000.0);
  EXPECT_DOUBLE_EQ(router_.capacity_khz(1), 750'000.0);
}

// Regression for the pre-namespace cancel bug: both clusters hand out raw
// CpuModel ids counting up from 1, so a decode task on big and a network
// task on little used to collide on the same raw id — and cancel() broke
// the tie big-first, killing the wrong task. With cluster-namespaced ids
// each cancel must land on exactly the submitting cluster.
TEST_F(RouterTest, CancelDispatchesToSubmittingCluster) {
  bool big_done = false;
  bool little_done = false;
  const std::uint64_t decode_id =
      router_.submit("decode", 3e6, [&] { big_done = true; });  // big raw id 1
  const std::uint64_t net_id =
      router_.submit("http-recv", 3e6, [&] { little_done = true; });  // little raw id 1
  ASSERT_NE(decode_id, net_id);  // the namespace byte keeps them distinct

  // Cancelling the little-cluster task must not touch big's raw-id-1 task
  // (the former big-first tie-break did exactly that).
  EXPECT_TRUE(router_.cancel(net_id));
  sim_.run();
  EXPECT_TRUE(big_done);
  EXPECT_FALSE(little_done);
}

TEST_F(RouterTest, CancelledIdsDoNotResolveTwice) {
  const std::uint64_t id = router_.submit("decode", 3e6, nullptr);
  EXPECT_TRUE(router_.cancel(id));
  EXPECT_FALSE(router_.cancel(id));
  // An id carrying an out-of-range cluster byte is rejected, not mis-routed.
  EXPECT_FALSE(router_.cancel(id | (0x7fULL << 56)));
}

TEST(TriClusterRouter, CapacityOrderingPicksPrimaryAndNetwork) {
  sim::Simulator sim;
  const auto& prof = device::profile("flagship");
  ASSERT_EQ(prof.cluster_count(), 3u);
  std::vector<std::unique_ptr<cpu::CpuModel>> models;
  std::vector<ClusterRouter::ClusterRef> refs;
  for (const auto& c : prof.clusters) {
    models.push_back(std::make_unique<cpu::CpuModel>(sim, c.opps,
                                                     cpu::CpuPowerModel(c.power)));
    refs.push_back(ClusterRouter::ClusterRef{models.back().get(), c.cycle_penalty});
  }
  ClusterRouter router(std::move(refs));
  EXPECT_EQ(router.primary_cluster(), 0u);    // prime: 2.85 GHz / 0.9
  EXPECT_EQ(router.network_cluster(), 2u);    // little: 1.8 GHz / 1.5
  EXPECT_EQ(router.decode_cluster(), 0u);

  router.submit("http-recv", 1e6, nullptr);
  EXPECT_TRUE(models[2]->busy());
  router.set_decode_cluster(1);
  router.submit("decode", 1e6, nullptr);
  EXPECT_TRUE(models[1]->busy());
  EXPECT_EQ(router.decode_tasks_on(1), 1u);
  EXPECT_EQ(router.decode_tasks_on_big(), 0u);
  EXPECT_EQ(router.decode_tasks_on_little(), 1u);  // non-primary flattened view
}

// ---- end-to-end big.LITTLE sessions ----

core::SessionConfig bl_config(const std::string& governor, std::size_t rep) {
  core::SessionConfig config;
  config.governor = governor;
  config.fixed_rep = rep;
  config.big_little = true;
  config.media_duration = sim::SimTime::seconds(60);
  config.net = core::NetProfile::kGood;
  config.seed = 12;
  return config;
}

TEST(BigLittleSession, KernelGovernorKeepsDecodeOnBig) {
  const auto r = core::run_session(bl_config("schedutil", 2));
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.decode_frames_little, 0u);
  EXPECT_EQ(r.decode_frames_big, 1800u);
  EXPECT_GT(r.cpu_little_mj, 0.0);  // network stack ran there
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
}

TEST(BigLittleSession, VafsMovesFeasibleDecodeToLittle) {
  const auto r = core::run_session(bl_config("vafs", 2));  // 720p fits LITTLE
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.decode_frames_little, 1700u);
  EXPECT_LT(r.decode_frames_big, 100u);  // only the cold-start frames
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
  EXPECT_EQ(r.qoe.rebuffer_events, 0u);
}

TEST(BigLittleSession, VafsKeepsInfeasibleDecodeOnBig) {
  const auto r = core::run_session(bl_config("vafs", 3));  // 1080p does not fit
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.decode_frames_little, 0u);
  EXPECT_GT(r.decode_frames_big, 1700u);
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
}

TEST(BigLittleSession, VafsBigLittleBeatsSingleClusterAtLowQuality) {
  auto config = bl_config("vafs", 1);  // 480p
  const auto bl = core::run_session(config);
  config.big_little = false;
  const auto single = core::run_session(config);
  ASSERT_TRUE(bl.finished);
  ASSERT_TRUE(single.finished);
  EXPECT_LT(bl.energy.cpu_mj, single.energy.cpu_mj);
  EXPECT_LT(bl.qoe.drop_ratio(), 0.01);
}

TEST(BigLittleSession, EnergySplitsAcrossClusters) {
  const auto r = core::run_session(bl_config("vafs", 2));
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.cpu_little_mj, 0.0);
  EXPECT_LT(r.cpu_little_mj, r.energy.cpu_mj);
  EXPECT_GT(r.freq_transitions_little, 0u);
}

TEST(BigLittleSession, PerClusterReportsMatchFlattenedView) {
  const auto r = core::run_session(bl_config("vafs", 2));
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0].name, "big");
  EXPECT_EQ(r.clusters[1].name, "little");
  EXPECT_DOUBLE_EQ(r.clusters[1].cpu_mj, r.cpu_little_mj);
  // Cluster counters run from model construction, the meter from its
  // session-start reset — the difference is the sub-mJ bring-up energy.
  EXPECT_GE(r.clusters[0].cpu_mj + r.clusters[1].cpu_mj, r.energy.cpu_mj);
  EXPECT_NEAR(r.clusters[0].cpu_mj + r.clusters[1].cpu_mj, r.energy.cpu_mj, 1.0);
  EXPECT_EQ(r.clusters[0].freq_transitions, r.freq_transitions);
  EXPECT_EQ(r.clusters[1].freq_transitions, r.freq_transitions_little);
  EXPECT_EQ(r.clusters[0].decode_frames, r.decode_frames_big);
  EXPECT_EQ(r.clusters[1].decode_frames, r.decode_frames_little);
  ASSERT_EQ(r.clusters[0].residency.size(), r.residency.size());
  for (std::size_t i = 0; i < r.residency.size(); ++i) {
    EXPECT_EQ(r.clusters[0].residency[i].first, r.residency[i].first);
    EXPECT_DOUBLE_EQ(r.clusters[0].residency[i].second, r.residency[i].second);
  }
  EXPECT_DOUBLE_EQ(r.clusters[0].busy_fraction, r.busy_fraction);
}

}  // namespace
}  // namespace vafs::sched
