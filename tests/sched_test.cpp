// Tests for the big.LITTLE substrate: router placement/penalty semantics
// and end-to-end big.LITTLE sessions including VAFS's cluster choice.
#include <gtest/gtest.h>

#include "core/session.h"
#include "sched/router.h"
#include "simcore/simulator.h"

namespace vafs::sched {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : big_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()),
        little_(sim_, cpu::OppTable::mobile_little_core(),
                cpu::CpuPowerModel(cpu::PowerModelParams::little_core())),
        router_(big_, little_, 2.0) {}

  sim::Simulator sim_;
  cpu::CpuModel big_;
  cpu::CpuModel little_;
  ClusterRouter router_;
};

TEST_F(RouterTest, NetworkTasksAlwaysGoLittle) {
  router_.submit("http-recv", 1e6, nullptr);
  router_.submit("http-request", 1e6, nullptr);
  EXPECT_TRUE(little_.busy());
  EXPECT_FALSE(big_.busy());
}

TEST_F(RouterTest, DecodeFollowsDecodeCluster) {
  router_.submit("decode", 1e6, nullptr);
  EXPECT_TRUE(big_.busy());

  router_.set_decode_cluster(Cluster::kLittle);
  router_.submit("decode", 1e6, nullptr);
  EXPECT_TRUE(little_.busy());
  EXPECT_EQ(router_.decode_tasks_on_big(), 1u);
  EXPECT_EQ(router_.decode_tasks_on_little(), 1u);
  EXPECT_EQ(router_.migrations(), 1u);
}

TEST_F(RouterTest, RedundantClusterSetIsNotAMigration) {
  router_.set_decode_cluster(Cluster::kBig);
  EXPECT_EQ(router_.migrations(), 0u);
}

TEST_F(RouterTest, LittlePenaltyInflatesCycles) {
  // 3e6 big-cycles at penalty 2.0 -> 6e6 little-cycles. At the LITTLE
  // cluster's 300 MHz boot frequency that is 20 ms.
  sim::SimTime done;
  router_.set_decode_cluster(Cluster::kLittle);
  router_.submit("decode", 3e6, [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done.as_micros(), 20'000);
}

TEST_F(RouterTest, BigClusterRunsRawCycles) {
  sim::SimTime done;
  router_.submit("decode", 3e6, [&] { done = sim_.now(); });
  sim_.run();
  EXPECT_EQ(done.as_micros(), 10'000);  // 3e6 at 300 MHz
}

TEST(ClusterName, Names) {
  EXPECT_STREQ(cluster_name(Cluster::kBig), "big");
  EXPECT_STREQ(cluster_name(Cluster::kLittle), "little");
}

// ---- end-to-end big.LITTLE sessions ----

core::SessionConfig bl_config(const std::string& governor, std::size_t rep) {
  core::SessionConfig config;
  config.governor = governor;
  config.fixed_rep = rep;
  config.big_little = true;
  config.media_duration = sim::SimTime::seconds(60);
  config.net = core::NetProfile::kGood;
  config.seed = 12;
  return config;
}

TEST(BigLittleSession, KernelGovernorKeepsDecodeOnBig) {
  const auto r = core::run_session(bl_config("schedutil", 2));
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.decode_frames_little, 0u);
  EXPECT_EQ(r.decode_frames_big, 1800u);
  EXPECT_GT(r.cpu_little_mj, 0.0);  // network stack ran there
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
}

TEST(BigLittleSession, VafsMovesFeasibleDecodeToLittle) {
  const auto r = core::run_session(bl_config("vafs", 2));  // 720p fits LITTLE
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.decode_frames_little, 1700u);
  EXPECT_LT(r.decode_frames_big, 100u);  // only the cold-start frames
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
  EXPECT_EQ(r.qoe.rebuffer_events, 0u);
}

TEST(BigLittleSession, VafsKeepsInfeasibleDecodeOnBig) {
  const auto r = core::run_session(bl_config("vafs", 3));  // 1080p does not fit
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.decode_frames_little, 0u);
  EXPECT_GT(r.decode_frames_big, 1700u);
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
}

TEST(BigLittleSession, VafsBigLittleBeatsSingleClusterAtLowQuality) {
  auto config = bl_config("vafs", 1);  // 480p
  const auto bl = core::run_session(config);
  config.big_little = false;
  const auto single = core::run_session(config);
  ASSERT_TRUE(bl.finished);
  ASSERT_TRUE(single.finished);
  EXPECT_LT(bl.energy.cpu_mj, single.energy.cpu_mj);
  EXPECT_LT(bl.qoe.drop_ratio(), 0.01);
}

TEST(BigLittleSession, EnergySplitsAcrossClusters) {
  const auto r = core::run_session(bl_config("vafs", 2));
  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.cpu_little_mj, 0.0);
  EXPECT_LT(r.cpu_little_mj, r.energy.cpu_mj);
  EXPECT_GT(r.freq_transitions_little, 0u);
}

}  // namespace
}  // namespace vafs::sched
