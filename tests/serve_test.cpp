// Serving-mode suite: the decision daemon must be *indistinguishable* from
// in-process decisions, bit for bit, and robust as a long-lived process.
//
// Three layers:
//
//   1. Differential: the golden corpus (tests/golden_corpus.h — the same
//      12 sessions golden_test.cpp pins) re-run with every VAFS plan
//      answered over the daemon socket, at client concurrency 1, 8 and
//      64. Each session's obs digest must equal its in-process digest
//      exactly — any divergence in decision values, ordering, or float
//      bits flips a digest.
//
//   2. Isolation and backpressure: a client stalled mid-frame must not
//      perturb any other stream's digest; connections beyond the cap get
//      one observable error frame and a close, bounded and counted.
//
//   3. Daemon lifecycle (the real vafsd binary, VAFS_VAFSD_PATH):
//      readiness line, SIGTERM drains and exits 0 with clients still
//      connected, and a client reconnects to a restarted daemon — fresh
//      epoch, same digests.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "golden_corpus.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace vafs {
namespace {

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/vafs-st-" + std::to_string(getpid()) + "-" + tag + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Runs one corpus case with a digest-only tracer, optionally through a
/// decision backend; returns the session's trace digest.
std::uint64_t run_case_digest(const golden::GoldenCase& c,
                              core::DecisionBackend* backend) {
  obs::Tracer tracer{obs::Tracer::Config{0}};
  core::SessionHooks hooks;
  hooks.tracer = &tracer;
  hooks.decision_backend = backend;
  const core::SessionResult result = core::run_session(c.config, hooks);
  EXPECT_TRUE(result.finished);
  return tracer.digest();
}

/// In-process reference digests, computed once per binary run.
const std::map<std::string, std::uint64_t>& reference_digests() {
  static const std::map<std::string, std::uint64_t> digests = [] {
    std::map<std::string, std::uint64_t> out;
    for (const auto& c : golden::golden_cases()) {
      out[c.name] = run_case_digest(c, nullptr);
    }
    return out;
  }();
  return digests;
}

class ServeDifferential : public ::testing::TestWithParam<int> {};

// The tentpole proof: every corpus session answered by the daemon yields
// the identical digest, at any client concurrency. Work items cycle
// through the corpus and outnumber the threads, so at concurrency 64 the
// daemon multiplexes 64 simultaneous connections x interleaved streams.
TEST_P(ServeDifferential, DaemonDigestsMatchInProcessBitwise) {
  const int concurrency = GetParam();
  const auto cases = golden::golden_cases();
  const auto& reference = reference_digests();

  serve::Server server({unique_socket_path("diff"), 256, 128, nullptr});
  ASSERT_TRUE(server.start());
  serve::SocketBackend backend(server.socket_path());

  // At least one full corpus pass, and enough items to keep every thread
  // busy with a non-trivial share.
  const std::size_t items =
      std::max(cases.size(), static_cast<std::size_t>(concurrency) * 2);
  std::vector<std::uint64_t> digests(items, 0);
  std::vector<std::string> errors(items);
  std::atomic<std::size_t> next{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= items) return;
      try {
        digests[i] = run_case_digest(cases[i % cases.size()], &backend);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < concurrency; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  for (std::size_t i = 0; i < items; ++i) {
    const auto& c = cases[i % cases.size()];
    SCOPED_TRACE(c.name + " (item " + std::to_string(i) + ")");
    EXPECT_TRUE(errors[i].empty()) << errors[i];
    EXPECT_EQ(digests[i], reference.at(c.name))
        << "daemon-served session diverged from in-process";
  }

  server.stop();
  const serve::ServerStats stats = server.stats();
  // One stream per *vafs* session: only the vafs governor consults the
  // decision core; the other corpus governors never open a stream.
  std::uint64_t vafs_items = 0;
  for (std::size_t i = 0; i < items; ++i) {
    if (cases[i % cases.size()].config.governor == "vafs") ++vafs_items;
  }
  EXPECT_EQ(stats.streams_opened, vafs_items);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GT(stats.requests, 0u);
}

INSTANTIATE_TEST_SUITE_P(Concurrency, ServeDifferential, ::testing::Values(1, 8, 64));

// A client wedged mid-frame (header sent, payload never arrives) must not
// perturb concurrent streams: connections are fully isolated, so every
// other session still matches its in-process digest.
TEST(ServeIsolation, StalledClientDoesNotPerturbOtherStreams) {
  const auto cases = golden::golden_cases();
  const auto& reference = reference_digests();

  serve::Server server({unique_socket_path("stall"), 64, 16, nullptr});
  ASSERT_TRUE(server.start());

  // The stalled client: a raw socket that sends only the first half of a
  // valid Decide frame and then goes silent.
  int stalled = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.socket_path().c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(connect(stalled, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  std::vector<std::uint8_t> frame;
  serve::encode_frame(frame, serve::MsgType::kDecide, 0,
                      std::vector<std::uint8_t>(64, 0xAB));
  ASSERT_EQ(write(stalled, frame.data(), frame.size() / 2),
            static_cast<ssize_t>(frame.size() / 2));

  // Meanwhile: a full corpus pass at concurrency 4.
  serve::SocketBackend backend(server.socket_path());
  std::vector<std::uint64_t> digests(cases.size(), 0);
  std::vector<std::string> errors(cases.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cases.size()) return;
      try {
        digests[i] = run_case_digest(cases[i], &backend);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(cases[i].name);
    EXPECT_TRUE(errors[i].empty()) << errors[i];
    EXPECT_EQ(digests[i], reference.at(cases[i].name));
  }

  close(stalled);
  server.stop();
}

// Beyond max_connections the server still answers: one kServerOverloaded
// error frame, then a close — bounded, observable, counted.
TEST(ServeBackpressure, OverCapConnectionsGetOneErrorFrameAndAClose) {
  serve::ServerOptions opts{unique_socket_path("cap"), 1, 16, nullptr};
  serve::Server server(std::move(opts));
  ASSERT_TRUE(server.start());

  serve::ServeConnection first(server.socket_path());
  ASSERT_TRUE(first.ping());  // occupies the single slot

  core::DecisionStreamInfo info;
  info.geometry.clusters.push_back({{300000, 600000, 1200000}, 1.0, 1'200'000.0});
  for (int i = 0; i < 3; ++i) {
    serve::ServeConnection rejected(server.socket_path());
    // The overload error frame arrives either as the reply to the hello
    // or as a transport failure if the close raced the send — both are
    // clean SessionErrors; a hang or a crash is the only wrong answer.
    EXPECT_THROW(rejected.open_stream(info), core::SessionError);
  }
  // The accepted connection is unaffected throughout.
  EXPECT_TRUE(first.ping());

  server.stop();
  EXPECT_EQ(server.stats().connections_rejected, 3u);
}

// ---------------------------------------------------------------------------
// Daemon lifecycle: the real vafsd binary.

class VafsdProcess {
 public:
  explicit VafsdProcess(std::string socket_path) : socket_path_(std::move(socket_path)) {
    pid_ = fork();
    if (pid_ == 0) {
      execl(VAFS_VAFSD_PATH, "vafsd", "--socket", socket_path_.c_str(),
            static_cast<char*>(nullptr));
      _exit(127);
    }
  }

  ~VafsdProcess() {
    if (pid_ > 0 && !reaped_) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
  }

  pid_t pid() const { return pid_; }

  /// True once the daemon answers a ping (bounded wait).
  bool wait_ready(int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      try {
        serve::ServeConnection probe(socket_path_);
        if (probe.ping()) return true;
      } catch (const core::SessionError&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// Waits (bounded) for exit; returns the raw wait status, or -1 on
  /// timeout.
  int wait_exit(int timeout_ms = 10000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    int status = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      const pid_t r = waitpid(pid_, &status, WNOHANG);
      if (r == pid_) {
        reaped_ = true;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
  }

 private:
  std::string socket_path_;
  pid_t pid_ = -1;
  bool reaped_ = false;
};

// SIGTERM with clients connected and streams open: drain, then exit 0.
TEST(VafsdLifecycle, SigtermDrainsAndExitsZero) {
  const std::string socket = unique_socket_path("term");
  VafsdProcess daemon(socket);
  ASSERT_GT(daemon.pid(), 0);
  ASSERT_TRUE(daemon.wait_ready());

  // A connected client with a live stream must not block the drain.
  serve::ServeConnection conn(socket);
  core::DecisionStreamInfo info;
  info.geometry.clusters.push_back({{300000, 600000, 1200000}, 1.0, 1'200'000.0});
  const std::uint64_t stream = conn.open_stream(info);
  (void)stream;

  ASSERT_EQ(kill(daemon.pid(), SIGTERM), 0);
  const int status = daemon.wait_exit();
  ASSERT_NE(status, -1) << "vafsd did not exit within the drain window";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The drained daemon's socket is gone: further requests fail cleanly.
  core::DecisionRequest req;
  req.event = core::DecisionEvent::kQueryStats;
  EXPECT_THROW(conn.decide(stream, req), core::SessionError);
}

// Kill the daemon, restart it on the same socket: the backend notices the
// broken connection, reconnects, and a fresh-epoch session produces the
// exact in-process digest (the new daemon shares no state with the old).
TEST(VafsdLifecycle, ClientReconnectsAfterRestartWithFreshEpoch) {
  const auto cases = golden::golden_cases();
  const auto& reference = reference_digests();
  const golden::GoldenCase& c = cases.front();

  const std::string socket = unique_socket_path("restart");
  serve::SocketBackend backend(socket);

  {
    VafsdProcess daemon(socket);
    ASSERT_GT(daemon.pid(), 0);
    ASSERT_TRUE(daemon.wait_ready());
    EXPECT_EQ(run_case_digest(c, &backend), reference.at(c.name));
    ASSERT_EQ(kill(daemon.pid(), SIGKILL), 0);  // simulated crash, no drain
    ASSERT_NE(daemon.wait_exit(), -1);
  }

  VafsdProcess daemon2(socket);
  ASSERT_GT(daemon2.pid(), 0);
  ASSERT_TRUE(daemon2.wait_ready());

  // The first attempt may hit the stale connection (discovered broken and
  // replaced on the retry); the retry must succeed with the exact digest.
  std::uint64_t digest = 0;
  try {
    digest = run_case_digest(c, &backend);
  } catch (const core::SessionError&) {
    digest = run_case_digest(c, &backend);
  }
  EXPECT_EQ(digest, reference.at(c.name));

  ASSERT_EQ(kill(daemon2.pid(), SIGTERM), 0);
  const int status = daemon2.wait_exit();
  ASSERT_NE(status, -1);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Unknown flags and a missing --socket are usage errors (exit 2), so a
// mis-deployed daemon fails loudly instead of binding a default path.
TEST(VafsdLifecycle, BadUsageExitsTwo) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Redirect stderr away from the test log.
    execl(VAFS_VAFSD_PATH, "vafsd", "--definitely-not-a-flag",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
}

}  // namespace
}  // namespace vafs
