// Integration tests: full streaming sessions through the session harness.
// These pin the paper-level behaviours: sessions complete, QoE is sane for
// well-provisioned configurations, VAFS saves CPU energy vs the reactive
// baselines without giving up QoE, and runs are deterministic.
#include <gtest/gtest.h>

#include "core/session.h"

namespace vafs::core {
namespace {

SessionConfig base_config() {
  SessionConfig config;
  config.media_duration = sim::SimTime::seconds(60);
  config.net = NetProfile::kConstant;
  config.constant_mbps = 12.0;
  config.fixed_rep = 2;  // 720p
  config.seed = 7;
  return config;
}

TEST(SessionSmoke, OndemandCompletesCleanly) {
  SessionConfig config = base_config();
  config.governor = "ondemand";
  const SessionResult r = run_session(config);

  ASSERT_TRUE(r.finished);
  EXPECT_GT(r.qoe.frames_presented, 1700u);  // 60 s * 30 fps, minus drops
  EXPECT_EQ(r.qoe.rebuffer_events, 0u);
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
  EXPECT_LT(r.qoe.startup_delay, sim::SimTime::seconds(5));
  EXPECT_GT(r.energy.cpu_mj, 0.0);
  EXPECT_GT(r.energy.radio_mj, 0.0);
}

TEST(SessionSmoke, VafsCompletesCleanly) {
  SessionConfig config = base_config();
  config.governor = "vafs";
  const SessionResult r = run_session(config);

  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.qoe.rebuffer_events, 0u);
  EXPECT_LT(r.qoe.drop_ratio(), 0.01);
  EXPECT_GT(r.vafs_plans, 100u);
  EXPECT_GT(r.vafs_setspeed_writes, 2u);
  EXPECT_GT(r.vafs_decode_mape, 0.0);
  EXPECT_LT(r.vafs_decode_mape, 0.5);
}

TEST(SessionSmoke, VafsSavesCpuEnergyVsOndemand) {
  SessionConfig config = base_config();
  config.governor = "ondemand";
  const SessionResult ondemand = run_session(config);
  config.governor = "vafs";
  const SessionResult vafs = run_session(config);

  ASSERT_TRUE(ondemand.finished);
  ASSERT_TRUE(vafs.finished);
  // The headline claim: meaningful CPU energy savings at preserved QoE.
  EXPECT_LT(vafs.energy.cpu_mj, ondemand.energy.cpu_mj * 0.9);
  EXPECT_LE(vafs.qoe.rebuffer_events, ondemand.qoe.rebuffer_events);
  EXPECT_LT(vafs.qoe.drop_ratio(), 0.01);
}

TEST(SessionSmoke, OracleLowerBoundsVafsWithCleanQoe) {
  SessionConfig config = base_config();
  config.fixed_rep = 3;  // 1080p: where prediction headroom costs the most
  config.governor = "vafs";
  const SessionResult vafs = run_session(config);
  config.governor = "vafs-oracle";
  const SessionResult oracle = run_session(config);

  ASSERT_TRUE(vafs.finished);
  ASSERT_TRUE(oracle.finished);
  // The oracle is a lower bound (within a whisker of noise)...
  EXPECT_LE(oracle.energy.cpu_mj, vafs.energy.cpu_mj * 1.02);
  // ...and perfect knowledge must not cost QoE.
  EXPECT_LT(oracle.qoe.drop_ratio(), 0.02);
  EXPECT_EQ(oracle.qoe.rebuffer_events, 0u);
}

TEST(SessionSmoke, DeterministicAcrossRuns) {
  SessionConfig config = base_config();
  config.governor = "vafs";
  const SessionResult a = run_session(config);
  const SessionResult b = run_session(config);

  EXPECT_EQ(a.energy.cpu_mj, b.energy.cpu_mj);
  EXPECT_EQ(a.qoe.frames_presented, b.qoe.frames_presented);
  EXPECT_EQ(a.freq_transitions, b.freq_transitions);
  EXPECT_EQ(a.wall.as_micros(), b.wall.as_micros());
}

}  // namespace
}  // namespace vafs::core
