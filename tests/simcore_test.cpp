// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "simcore/event_queue.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"
#include "simcore/stats.h"
#include "simcore/time.h"

namespace vafs::sim {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTime, ConstructorsAgree) {
  EXPECT_EQ(SimTime::seconds(3).as_micros(), 3'000'000);
  EXPECT_EQ(SimTime::millis(3).as_micros(), 3'000);
  EXPECT_EQ(SimTime::micros(3).as_micros(), 3);
  EXPECT_EQ(SimTime::seconds_f(1.5).as_micros(), 1'500'000);
  EXPECT_EQ(SimTime::zero().as_micros(), 0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::millis(250);
  const SimTime b = SimTime::millis(750);
  EXPECT_EQ((a + b).as_micros(), 1'000'000);
  EXPECT_EQ((b - a).as_millis_f(), 500.0);
  EXPECT_EQ((a * 4).as_seconds_f(), 1.0);
  EXPECT_EQ((b / 3).as_micros(), 250'000);
  EXPECT_TRUE((a - b).is_negative());
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_GE(SimTime::max(), SimTime::seconds(1'000'000));
}

TEST(SimTime, ScaledRounds) {
  EXPECT_EQ(SimTime::micros(10).scaled(0.55).as_micros(), 6);  // 5.5 -> 6
  EXPECT_EQ(SimTime::micros(100).scaled(1.5).as_micros(), 150);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::seconds(2).to_string(), "2s");
  EXPECT_EQ(SimTime::millis(250).to_string(), "250ms");
  EXPECT_EQ(SimTime::micros(12).to_string(), "12us");
}

// ------------------------------------------------------------ EventQueue

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::millis(30), [&] { fired.push_back(3); });
  q.schedule(SimTime::millis(10), [&] { fired.push_back(1); });
  q.schedule(SimTime::millis(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsKeepInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    q.schedule(SimTime::millis(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(SimTime::millis(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnEmptyHandles) {
  EventHandle empty;
  empty.cancel();
  empty.cancel();
  EXPECT_FALSE(empty.pending());

  EventQueue q;
  EventHandle h = q.schedule(SimTime::millis(1), [] {});
  h.cancel();
  h.cancel();  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleNotPendingAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::millis(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime::millis(1), [] {});
  q.schedule(SimTime::millis(9), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), SimTime::millis(9));
}

TEST(EventQueue, PopNextRespectsDeadlineAndSettlesStaleHead) {
  EventQueue q;
  EventQueue::Popped out;
  EXPECT_FALSE(q.pop_next(SimTime::max(), &out));  // empty queue

  int fired = 0;
  q.schedule(SimTime::millis(10), [&] { ++fired; });
  EventHandle h = q.schedule(SimTime::millis(5), [&] { fired += 100; });
  h.cancel();  // the heap head is now stale; pop_next must skip past it

  EXPECT_FALSE(q.pop_next(SimTime::millis(9), &out));  // next live is at 10
  ASSERT_TRUE(q.pop_next(SimTime::millis(10), &out));
  EXPECT_EQ(out.time, SimTime::millis(10));
  out.fn();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.pop_next(SimTime::max(), &out));
}

TEST(EventQueue, StaleHandleDoesNotAliasReusedSlot) {
  EventQueue q;
  int first = 0;
  int second = 0;
  EventHandle old = q.schedule(SimTime::millis(1), [&] { ++first; });
  q.pop().fn();  // frees old's slot (and bumps its generation)
  EXPECT_EQ(first, 1);

  // The freed slot is reused for the next event; the stale handle now
  // points at the same slot with an older generation.
  EventHandle fresh = q.schedule(SimTime::millis(2), [&] { ++second; });
  ASSERT_EQ(q.slab_size(), 1u);  // same slot, or the test proves nothing

  EXPECT_FALSE(old.pending());
  old.cancel();  // generation mismatch: must not touch the new event
  EXPECT_TRUE(fresh.pending());
  ASSERT_FALSE(q.empty());
  q.pop().fn();
  EXPECT_EQ(second, 1);
}

TEST(EventQueue, ChurnMatchesReferenceModelAcrossGenerations) {
  // Randomized schedule/cancel/reschedule churn, cross-checked against a
  // map ordered by (time, arming order) — the queue's documented order.
  // Three full drain cycles recycle every slot repeatedly, exercising
  // generation bumps, handle invalidation, lazy deletion and compaction.
  EventQueue q;
  Rng rng(2024);
  int next_id = 0;
  std::uint64_t order = 0;  // monotone arming counter, bumped like seq

  for (int cycle = 0; cycle < 3; ++cycle) {
    struct Live {
      EventHandle handle;
      std::pair<std::int64_t, std::uint64_t> key;
      int id;
    };
    std::vector<Live> live;
    std::map<std::pair<std::int64_t, std::uint64_t>, int> expected;
    std::vector<int> fired;

    auto arm = [&](std::int64_t ms) {
      const int id = next_id++;
      EventHandle h = q.schedule(SimTime::millis(ms), [&fired, id] { fired.push_back(id); });
      live.push_back({h, {ms, order}, id});
      expected.emplace(std::make_pair(ms, order), id);
      ++order;
    };

    for (int op = 0; op < 600; ++op) {
      // Few distinct times on purpose: ties are the interesting case.
      const std::int64_t ms = rng.uniform_int(1, 40);
      const double dice = rng.uniform();
      if (live.empty() || dice < 0.5) {
        arm(ms);
      } else {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        if (dice < 0.75) {  // cancel
          live[pick].handle.cancel();
          expected.erase(live[pick].key);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {  // reschedule: keeps the callback, re-sequences the event
          ASSERT_TRUE(q.reschedule(live[pick].handle, SimTime::millis(ms)));
          expected.erase(live[pick].key);
          live[pick].key = {ms, order};
          expected.emplace(std::make_pair(ms, order), live[pick].id);
          ++order;
        }
      }
    }
    EXPECT_LE(q.stale_entries(), q.raw_size());

    // Drain through the run-loop path and compare the full firing order.
    EventQueue::Popped out;
    while (q.pop_next(SimTime::max(), &out)) out.fn();
    std::vector<int> want;
    want.reserve(expected.size());
    for (const auto& [key, id] : expected) want.push_back(id);
    EXPECT_EQ(fired, want);
    EXPECT_TRUE(q.empty());

    for (const Live& l : live) EXPECT_FALSE(l.handle.pending());
  }
}

// ------------------------------------------------------------- Simulator

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator s;
  std::vector<std::int64_t> at;
  s.at(SimTime::millis(5), [&] { at.push_back(s.now().as_micros()); });
  s.after(SimTime::millis(2), [&] { at.push_back(s.now().as_micros()); });
  s.run();
  EXPECT_EQ(at, (std::vector<std::int64_t>{2000, 5000}));
  EXPECT_EQ(s.now(), SimTime::millis(5));
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator s;
  s.run_until(SimTime::seconds(3));
  EXPECT_EQ(s.now(), SimTime::seconds(3));
}

TEST(Simulator, RunUntilDoesNotExecuteLaterEvents) {
  Simulator s;
  bool late = false;
  s.at(SimTime::seconds(10), [&] { late = true; });
  s.run_until(SimTime::seconds(5));
  EXPECT_FALSE(late);
  EXPECT_EQ(s.now(), SimTime::seconds(5));
  s.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.after(SimTime::millis(1), chain);
  };
  s.after(SimTime::millis(1), chain);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime::millis(5));
}

TEST(Simulator, PeriodicFiresAtFixedIntervals) {
  Simulator s;
  std::vector<std::int64_t> times;
  s.every(SimTime::millis(10), [&] { times.push_back(s.now().as_micros()); });
  s.run_until(SimTime::millis(35));
  EXPECT_EQ(times, (std::vector<std::int64_t>{10'000, 20'000, 30'000}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  Simulator s;
  int count = 0;
  EventHandle h = s.every(SimTime::millis(10), [&] { ++count; });
  s.run_until(SimTime::millis(25));
  h.cancel();
  s.run_until(SimTime::millis(100));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicCanCancelItselfFromCallback) {
  Simulator s;
  int count = 0;
  EventHandle h;
  h = s.every(SimTime::millis(10), [&] {
    if (++count == 3) h.cancel();
  });
  s.run_until(SimTime::seconds(1));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int count = 0;
  s.after(SimTime::millis(1), [&] { ++count; });
  s.after(SimTime::millis(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunWithLimitStopsEarly) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.at(SimTime::millis(i), [&] { ++count; });
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.events_executed(), 4u);
}

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng parent1(77), parent2(77);
  Rng childa = parent1.fork(0);
  Rng childb = parent2.fork(0);
  EXPECT_EQ(childa.next_u64(), childb.next_u64());  // same lineage => same stream

  Rng parent3(77);
  Rng other = parent3.fork(1);
  EXPECT_NE(childa.next_u64(), other.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 7.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(12);
  OnlineStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.2);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, LognormalIsPositiveWithExpectedMedian) {
  Rng rng(13);
  SampleSet samples;
  for (int i = 0; i < 20'000; ++i) samples.add(rng.lognormal(1.0, 0.5));
  EXPECT_GT(samples.min(), 0.0);
  EXPECT_NEAR(samples.percentile(0.5), std::exp(1.0), 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(14);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

// ---------------------------------------------------------------- Stats

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZeroes) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  Rng rng(20);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100, reversed insertion
  EXPECT_EQ(s.percentile(0.0), 1.0);
  EXPECT_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.95), 95.0, 1.0);
}

TEST(SampleSet, CacheInvalidatedByAdd) {
  SampleSet s;
  s.add(1.0);
  EXPECT_EQ(s.percentile(1.0), 1.0);
  s.add(10.0);
  EXPECT_EQ(s.percentile(1.0), 10.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total_weight(), 5.0);
  EXPECT_EQ(h.bin_weight(0), 2.0);
  EXPECT_EQ(h.bin_weight(2), 1.0);
  EXPECT_EQ(h.bin_weight(4), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.4);
  EXPECT_EQ(h.bin_lo(1), 2.0);
  EXPECT_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 3.0);
  h.add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.25);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string text = h.render();
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
}  // namespace vafs::sim
