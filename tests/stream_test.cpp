// Tests for the streaming layer: ABR decisions on synthetic contexts, and
// the player pipeline end to end against a controlled CPU and network.
#include <gtest/gtest.h>

#include <memory>

#include "cpu/cpu_model.h"
#include "net/downloader.h"
#include "net/radio.h"
#include "simcore/simulator.h"
#include "stream/abr.h"
#include "stream/player.h"
#include "video/content.h"

namespace vafs::stream {
namespace {

// ------------------------------------------------------------------- ABR

class AbrTest : public ::testing::Test {
 protected:
  AbrTest() : manifest_(video::Manifest::typical_vod("t", sim::SimTime::seconds(60))) {}

  AbrContext ctx(double mbps, double buffer_s) {
    AbrContext c;
    c.throughput_mbps = mbps;
    c.buffer_level = sim::SimTime::seconds_f(buffer_s);
    c.manifest = &manifest_;
    return c;
  }

  video::Manifest manifest_;
};

TEST_F(AbrTest, FixedAlwaysReturnsItsRep) {
  FixedAbr abr(3);
  EXPECT_EQ(abr.choose(ctx(0.1, 0)), 3u);
  EXPECT_EQ(abr.choose(ctx(100, 60)), 3u);
}

TEST_F(AbrTest, RateBasedScalesWithThroughput) {
  RateBasedAbr abr(0.8);
  EXPECT_EQ(abr.choose(ctx(0.0, 10)), 0u);   // no estimate: lowest
  EXPECT_EQ(abr.choose(ctx(1.0, 10)), 0u);   // 0.8 Mbps budget
  EXPECT_EQ(abr.choose(ctx(2.0, 10)), 1u);   // 1.6 Mbps >= 1.2M
  EXPECT_EQ(abr.choose(ctx(4.0, 10)), 2u);   // 3.2 Mbps >= 2.5M
  EXPECT_EQ(abr.choose(ctx(10.0, 10)), 3u);  // 8 Mbps >= 5M
}

TEST_F(AbrTest, BufferBasedMapsReservoirToCushion) {
  BufferBasedAbr abr(sim::SimTime::seconds(5), sim::SimTime::seconds(15));
  EXPECT_EQ(abr.choose(ctx(99, 2)), 0u);    // below reservoir
  EXPECT_EQ(abr.choose(ctx(99, 5)), 0u);    // at reservoir
  EXPECT_EQ(abr.choose(ctx(99, 10)), 2u);   // midpoint: ~(3-1)*0.5 rounded
  EXPECT_EQ(abr.choose(ctx(99, 15)), 3u);   // at cushion
  EXPECT_EQ(abr.choose(ctx(99, 40)), 3u);   // above cushion
}

TEST_F(AbrTest, BolaLowBufferPicksBottomRung) {
  BolaAbr abr(sim::SimTime::seconds(12));
  EXPECT_EQ(abr.choose(ctx(99, 0)), 0u);
  EXPECT_EQ(abr.choose(ctx(99, 2)), 0u);
}

TEST_F(AbrTest, BolaFullBufferPicksTopRung) {
  BolaAbr abr(sim::SimTime::seconds(12));
  EXPECT_EQ(abr.choose(ctx(99, 12)), 3u);
}

TEST_F(AbrTest, BolaIsMonotoneInBufferLevel) {
  BolaAbr abr(sim::SimTime::seconds(12));
  std::size_t prev = 0;
  for (double level = 0.0; level <= 12.0; level += 0.5) {
    const std::size_t rep = abr.choose(ctx(99, level));
    EXPECT_GE(rep, prev) << "level " << level;
    prev = rep;
  }
  EXPECT_EQ(prev, 3u);
}

TEST_F(AbrTest, BolaIgnoresThroughputEstimate) {
  // BOLA is buffer-only by construction: the estimate must not matter.
  BolaAbr abr(sim::SimTime::seconds(12));
  EXPECT_EQ(abr.choose(ctx(0.01, 8)), abr.choose(ctx(100.0, 8)));
}

// ---------------------------------------------- ladder-switch behaviour

TEST_F(AbrTest, RateBasedSwitchesExactlyAtLadderBoundaries) {
  // The up-switch point for rung i is bitrate_i / safety. Pinning both
  // sides of every boundary pins the entire ladder-switch schedule — a
  // change to rep_index_for_bitrate's tie handling or the safety margin
  // shows up here, not as a silent QoE shift in the benches.
  const double safety = 0.8;
  RateBasedAbr abr(safety);
  for (std::size_t i = 1; i < manifest_.representation_count(); ++i) {
    const double boundary_mbps =
        static_cast<double>(manifest_.representation(i).bitrate_kbps) / 1000.0 / safety;
    EXPECT_EQ(abr.choose(ctx(boundary_mbps * 0.999, 10)), i - 1) << "rung " << i;
    EXPECT_EQ(abr.choose(ctx(boundary_mbps * 1.001, 10)), i) << "rung " << i;
  }
}

TEST_F(AbrTest, RateBasedHoldsItsRungAcrossInBandNoise) {
  // Throughput noise that stays inside one rung's budget band must cause
  // no ladder switch at all — the stability the smoothed estimate is
  // supposed to buy. The 720p band is budget ∈ [2500, 5000) kbps, i.e.
  // throughput ∈ [3.125, 6.25) Mbps at safety 0.8.
  RateBasedAbr abr(0.8);
  const std::size_t rung = abr.choose(ctx(4.0, 10));
  ASSERT_EQ(rung, 2u);
  for (double mbps = 3.2; mbps < 6.2; mbps += 0.05) {
    EXPECT_EQ(abr.choose(ctx(mbps, 10)), rung) << mbps << " Mbps";
  }
}

TEST_F(AbrTest, BufferBasedIsMonotoneAndStepsOneRungAtATime) {
  BufferBasedAbr abr(sim::SimTime::seconds(5), sim::SimTime::seconds(15));
  std::size_t prev = 0;
  for (double level = 0.0; level <= 20.0; level += 0.05) {
    const std::size_t rep = abr.choose(ctx(99, level));
    EXPECT_GE(rep, prev) << "level " << level;
    EXPECT_LE(rep - prev, 1u) << "level " << level;
    prev = rep;
  }
  EXPECT_EQ(prev, 3u);
}

TEST_F(AbrTest, BufferBasedSwitchPointsAreTheBandMidpoints) {
  // Linear map + nearest-rung rounding: the i-1 → i switch sits at
  // reservoir + (i - 0.5) / (reps - 1) · (cushion - reservoir).
  BufferBasedAbr abr(sim::SimTime::seconds(5), sim::SimTime::seconds(15));
  const double reservoir = 5.0;
  const double span = 10.0;
  const auto reps = static_cast<double>(manifest_.representation_count());
  for (std::size_t i = 1; i < manifest_.representation_count(); ++i) {
    const double sw = reservoir + (static_cast<double>(i) - 0.5) / (reps - 1.0) * span;
    EXPECT_EQ(abr.choose(ctx(99, sw - 0.01)), i - 1) << "switch " << i;
    EXPECT_EQ(abr.choose(ctx(99, sw + 0.01)), i) << "switch " << i;
  }
}

TEST_F(AbrTest, BolaHigherGammaIsMoreConservative) {
  // γp weights the rebuffer-avoidance term: at every buffer level a
  // larger γp must pick the same or a lower rung, never a higher one.
  BolaAbr eager(sim::SimTime::seconds(12), /*gamma_p=*/0.5);
  BolaAbr cautious(sim::SimTime::seconds(12), /*gamma_p=*/20.0);
  bool strict_somewhere = false;
  for (double level = 0.0; level <= 12.0; level += 0.25) {
    const std::size_t hi = eager.choose(ctx(99, level));
    const std::size_t lo = cautious.choose(ctx(99, level));
    EXPECT_LE(lo, hi) << "level " << level;
    strict_somewhere |= lo < hi;
  }
  EXPECT_TRUE(strict_somewhere);  // the knob actually does something
}

// ----------------------------------------------------------------- Player

struct ObserverLog : PlayerObserver {
  int state_changes = 0;
  int segments_requested = 0;
  int segments_completed = 0;
  int decodes = 0;
  int presented = 0;
  int dropped = 0;
  std::vector<PlayerState> states;

  void on_state_change(PlayerState, PlayerState to) override {
    ++state_changes;
    states.push_back(to);
  }
  void on_segment_request(std::size_t, std::size_t, std::uint64_t) override {
    ++segments_requested;
  }
  void on_segment_complete(std::size_t, std::size_t, const net::FetchResult&) override {
    ++segments_completed;
  }
  void on_decode_complete(std::uint64_t, double, sim::SimTime, bool) override { ++decodes; }
  void on_frame_presented(std::uint64_t) override { ++presented; }
  void on_frame_dropped(std::uint64_t) override { ++dropped; }
};

class PlayerTest : public ::testing::Test {
 protected:
  PlayerTest()
      : cpu_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()),
        radio_(sim_, net::RadioParams::lte()),
        manifest_(video::Manifest::typical_vod("t", sim::SimTime::seconds(24))),
        content_(7, video::ContentParams{}, &manifest_) {}

  /// Builds the player against the given bandwidth process.
  Player& make_player(net::BandwidthProcess& bw, std::size_t rep,
                      PlayerConfig config = {}) {
    downloader_ = std::make_unique<net::Downloader>(sim_, radio_, bw, &cpu_);
    player_ = std::make_unique<Player>(sim_, cpu_, *downloader_, content_,
                                       std::make_unique<FixedAbr>(rep), config);
    return *player_;
  }

  /// Runs until the player finishes (or the cap).
  bool run_to_finish(sim::SimTime cap = sim::SimTime::seconds(300)) {
    bool done = false;
    player_->start([&] { done = true; });
    while (!done && sim_.now() < cap) {
      if (!sim_.step()) break;
    }
    return done;
  }

  sim::Simulator sim_;
  cpu::CpuModel cpu_;
  net::RadioModel radio_;
  video::Manifest manifest_;
  video::ContentModel content_;
  std::unique_ptr<net::Downloader> downloader_;
  std::unique_ptr<Player> player_;
};

TEST_F(PlayerTest, HappyPathPresentsEveryFrame) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  Player& p = make_player(bw, 2);
  ASSERT_TRUE(run_to_finish());
  EXPECT_EQ(p.state(), PlayerState::kFinished);
  EXPECT_EQ(p.qoe().frames_presented, 720u);  // 24 s * 30 fps
  EXPECT_EQ(p.qoe().frames_dropped, 0u);
  EXPECT_EQ(p.qoe().rebuffer_events, 0u);
  EXPECT_GT(p.qoe().startup_delay, sim::SimTime::zero());
  EXPECT_LT(p.qoe().startup_delay, sim::SimTime::seconds(3));
  EXPECT_DOUBLE_EQ(p.qoe().mean_bitrate_kbps, 2500.0);
}

TEST_F(PlayerTest, BufferRespectsTarget) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(50.0);
  PlayerConfig config;
  config.buffer_target = sim::SimTime::seconds(8);
  Player& p = make_player(bw, 0, config);

  sim::SimTime peak;
  bool done = false;
  p.start([&] { done = true; });
  while (!done && sim_.step()) {
    peak = std::max(peak, p.buffer_level());
  }
  // Never more than target + one segment (the one that was in flight).
  EXPECT_LE(peak, sim::SimTime::seconds(12));
  EXPECT_GT(peak, sim::SimTime::seconds(7));
}

TEST_F(PlayerTest, SlowCpuDropsFramesButFinishes) {
  // Pin min frequency and stream 1080p: decode demand (~900 MHz) far
  // exceeds 300 MHz, so most frames miss their vsync.
  cpu_.set_frequency(300'000);
  net::ConstantBandwidth bw(30.0);
  Player& p = make_player(bw, 3);
  ASSERT_TRUE(run_to_finish());
  EXPECT_GT(p.qoe().drop_ratio(), 0.5);
  EXPECT_EQ(p.qoe().deadline_misses, p.qoe().frames_dropped);
  EXPECT_EQ(p.qoe().frames_presented + p.qoe().frames_dropped, 720u);
}

TEST_F(PlayerTest, OutageCausesRebufferAndRecovery) {
  cpu_.set_frequency(2'100'000);
  // 12 Mbps, outage between t=6s and t=16s, then recovery.
  net::TraceBandwidth bw({{sim::SimTime::zero(), 12.0},
                          {sim::SimTime::seconds(6), 0.05},
                          {sim::SimTime::seconds(16), 12.0}},
                         /*loop=*/false);
  PlayerConfig config;
  config.buffer_target = sim::SimTime::seconds(6);  // small buffer: vulnerable
  Player& p = make_player(bw, 2, config);
  ASSERT_TRUE(run_to_finish());
  EXPECT_GE(p.qoe().rebuffer_events, 1u);
  EXPECT_GT(p.qoe().rebuffer_time, sim::SimTime::seconds(1));
  EXPECT_EQ(p.qoe().frames_presented + p.qoe().frames_dropped, 720u);
}

TEST_F(PlayerTest, ObserverSeesFullPipeline) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  Player& p = make_player(bw, 1);
  ObserverLog log;
  p.add_observer(&log);
  ASSERT_TRUE(run_to_finish());
  EXPECT_EQ(log.segments_requested, 6);  // 24 s / 4 s
  EXPECT_EQ(log.segments_completed, 6);
  EXPECT_EQ(log.decodes, 720);
  EXPECT_EQ(log.presented, 720);
  EXPECT_EQ(log.dropped, 0);
  ASSERT_GE(log.states.size(), 3u);
  EXPECT_EQ(log.states.front(), PlayerState::kStartup);
  EXPECT_EQ(log.states.back(), PlayerState::kFinished);
}

TEST_F(PlayerTest, RepOfFrameMatchesSegments) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  downloader_ = std::make_unique<net::Downloader>(sim_, radio_, bw, &cpu_);
  // Rate ABR on a fast link: first segment at rep 0 (no estimate), later
  // segments upgrade.
  player_ = std::make_unique<Player>(sim_, cpu_, *downloader_, content_,
                                     std::make_unique<RateBasedAbr>(0.8), PlayerConfig{});
  bool done = false;
  player_->start([&] { done = true; });
  while (!done && sim_.step()) {
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(player_->rep_of_frame(0), 0u);           // conservative start
  EXPECT_GT(player_->rep_of_frame(719), 0u);         // upgraded later
  EXPECT_GE(player_->qoe().quality_switches, 1u);
  EXPECT_GT(player_->qoe().mean_bitrate_kbps, 800.0);
}

TEST_F(PlayerTest, DecodeAheadWindowIsBounded) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  PlayerConfig config;
  config.decode_ahead_frames = 3;
  Player& p = make_player(bw, 0, config);
  bool done = false;
  p.start([&] { done = true; });
  std::uint64_t max_ahead = 0;
  while (!done && sim_.step()) {
    max_ahead = std::max(max_ahead, p.decoded_ahead());
  }
  EXPECT_LE(max_ahead, 4u);  // window + the one in flight at sampling time
  EXPECT_GE(max_ahead, 2u);
}

TEST_F(PlayerTest, PlayedTimeMatchesPlayhead) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  Player& p = make_player(bw, 0);
  ASSERT_TRUE(run_to_finish());
  EXPECT_EQ(p.playhead_frame(), 720u);
  // 720 frames at the integer-µs frame period (33333 µs) — within one
  // frame's rounding of the nominal 24 s.
  EXPECT_EQ(p.played(), p.frame_period() * 720);
  EXPECT_NEAR(p.played().as_seconds_f(), 24.0, 0.001);
  EXPECT_EQ(p.total_frames(), 720u);
}

TEST_F(PlayerTest, ThroughputEstimateConverges) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(10.0);
  Player& p = make_player(bw, 0);
  ASSERT_TRUE(run_to_finish());
  EXPECT_NEAR(p.throughput_estimate_mbps(), 10.0, 2.5);
}

TEST_F(PlayerTest, SeekForwardSkipsContent) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  Player& p = make_player(bw, 1);
  // At t=6 s (playing), jump to media time 16 s (segment 4 of 6).
  sim_.at(sim::SimTime::seconds(6), [&] {
    ASSERT_EQ(p.state(), PlayerState::kPlaying);
    EXPECT_TRUE(p.seek(sim::SimTime::seconds(16)));
    EXPECT_EQ(p.state(), PlayerState::kSeeking);
    EXPECT_EQ(p.playhead_frame(), 480u);  // 16 s * 30 fps
    EXPECT_EQ(p.buffer_level(), sim::SimTime::zero());
  });
  ASSERT_TRUE(run_to_finish());
  EXPECT_EQ(p.qoe().seek_count, 1u);
  EXPECT_GT(p.qoe().seek_time, sim::SimTime::zero());
  EXPECT_EQ(p.qoe().rebuffer_events, 0u);  // the stall is seek, not rebuffer
  // Skipped media is never presented: ~6 s played + 8 s after the seek.
  EXPECT_LT(p.qoe().frames_presented, 500u);
  EXPECT_GT(p.qoe().frames_presented, 350u);
  EXPECT_EQ(p.playhead_frame(), 720u);
}

TEST_F(PlayerTest, SeekBackwardRedownloads) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  Player& p = make_player(bw, 1);
  const std::uint64_t media_bytes = [&] {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < 6; ++s) total += content_.segment_bytes(1, s);
    return total;
  }();
  sim_.at(sim::SimTime::seconds(10), [&] {
    EXPECT_TRUE(p.seek(sim::SimTime::zero()));
    EXPECT_EQ(p.playhead_frame(), 0u);
  });
  ASSERT_TRUE(run_to_finish());
  // Rewatched content is fetched again.
  EXPECT_GT(downloader_->total_bytes_fetched(), media_bytes + media_bytes / 10);
  EXPECT_EQ(p.qoe().seek_count, 1u);
  // More frames than the media length get presented (replayed span).
  EXPECT_GT(p.qoe().frames_presented + p.qoe().frames_dropped, 720u);
}

TEST_F(PlayerTest, SeekWithInflightFetchIgnoresStaleSegment) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(3.0);  // slow: fetches are always in flight
  Player& p = make_player(bw, 1);
  sim_.at(sim::SimTime::seconds(9), [&] {
    // Mid-download of some segment: seek far forward.
    EXPECT_TRUE(p.seek(sim::SimTime::seconds(20)));
  });
  ASSERT_TRUE(run_to_finish());
  // The stale segment must not have been pushed: playback ends cleanly at
  // the last frame with a consistent frame count.
  EXPECT_EQ(p.playhead_frame(), 720u);
  EXPECT_EQ(p.qoe().seek_count, 1u);
}

TEST_F(PlayerTest, SeekRejectedBeforePlayback) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  Player& p = make_player(bw, 1);
  EXPECT_FALSE(p.seek(sim::SimTime::seconds(8)));  // kIdle
  bool done = false;
  p.start([&] { done = true; });
  EXPECT_FALSE(p.seek(sim::SimTime::seconds(8)));  // kStartup
  while (!done && sim_.step()) {
  }
  EXPECT_FALSE(p.seek(sim::SimTime::seconds(8)));  // kFinished
  EXPECT_EQ(p.qoe().seek_count, 0u);
}

TEST_F(PlayerTest, SeekTargetsClampToContent) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  Player& p = make_player(bw, 1);
  sim_.at(sim::SimTime::seconds(5), [&] {
    // Far past the end: snaps to the last segment.
    EXPECT_TRUE(p.seek(sim::SimTime::seconds(9999)));
    EXPECT_EQ(p.playhead_frame(), 600u);  // segment 5 of [0,6)
  });
  ASSERT_TRUE(run_to_finish());
  EXPECT_EQ(p.playhead_frame(), 720u);
}

TEST_F(PlayerTest, AudioPipelineAddsBackgroundLoad) {
  // Two self-contained worlds, identical but for the audio pipeline.
  auto run_world = [](double audio_cycles, double* busy_s, std::uint64_t* drops) {
    sim::Simulator simulator;
    cpu::CpuModel cpu_model(simulator, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel());
    cpu_model.set_frequency(2'100'000);
    net::RadioModel radio(simulator, net::RadioParams::lte());
    net::ConstantBandwidth bw(20.0);
    net::Downloader downloader(simulator, radio, bw, &cpu_model);
    video::Manifest manifest = video::Manifest::typical_vod("a", sim::SimTime::seconds(24));
    video::ContentModel content(7, video::ContentParams{}, &manifest);
    PlayerConfig config;
    config.audio_cycles_per_frame = audio_cycles;
    Player player(simulator, cpu_model, downloader, content,
                  std::make_unique<FixedAbr>(1), config);
    bool done = false;
    player.start([&] { done = true; });
    while (!done && simulator.step()) {
    }
    ASSERT_TRUE(done);
    *busy_s = cpu_model.total_busy_time().as_seconds_f();
    *drops = player.qoe().frames_dropped;
  };

  double busy_without = 0, busy_with = 0;
  std::uint64_t drops_without = 0, drops_with = 0;
  run_world(0.0, &busy_without, &drops_without);
  run_world(1.2e6, &busy_with, &drops_with);

  // 720 frames * 1.2 Mcycles at 2.1 GHz ~ 0.41 s extra busy time.
  EXPECT_NEAR(busy_with - busy_without, 720 * 1.2e6 / 2.1e9, 0.05);
  // Audio never gates presentation.
  EXPECT_EQ(drops_with, drops_without);
}

TEST_F(PlayerTest, LiveModeGatesFetchesOnAvailability) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(50.0);  // fast link: availability is the bottleneck
  PlayerConfig config;
  config.live = true;
  config.live_encode_delay = sim::SimTime::millis(500);
  config.startup_buffer = sim::SimTime::seconds(4);
  Player& p = make_player(bw, 1, config);

  std::vector<sim::SimTime> request_times;
  struct Probe : PlayerObserver {
    std::vector<sim::SimTime>* times;
    sim::Simulator* sim;
    void on_segment_request(std::size_t, std::size_t, std::uint64_t) override {
      times->push_back(sim->now());
    }
  } probe;
  probe.times = &request_times;
  probe.sim = &sim_;
  p.add_observer(&probe);

  ASSERT_TRUE(run_to_finish());
  ASSERT_EQ(request_times.size(), 6u);
  for (std::size_t n = 0; n < request_times.size(); ++n) {
    // Segment n is requested no earlier than its publish time.
    const sim::SimTime publish =
        sim::SimTime::seconds(4) * static_cast<std::int64_t>(n + 1) + sim::SimTime::millis(500);
    EXPECT_GE(request_times[n], publish) << "segment " << n;
    // And on a fast link, promptly after it (within one segment).
    EXPECT_LE(request_times[n], publish + sim::SimTime::seconds(4)) << "segment " << n;
  }
}

TEST_F(PlayerTest, LiveLatencyStaysBounded) {
  cpu_.set_frequency(2'100'000);
  net::ConstantBandwidth bw(20.0);
  PlayerConfig config;
  config.live = true;
  config.startup_buffer = sim::SimTime::seconds(4);
  config.rebuffer_resume = sim::SimTime::seconds(2);
  Player& p = make_player(bw, 1, config);
  ASSERT_TRUE(run_to_finish());
  // Joined at stream start: latency = first segment's publish + fetch,
  // and it must not grow across the session (no compounding stalls).
  EXPECT_GT(p.live_latency(), sim::SimTime::seconds(4));
  EXPECT_LT(p.live_latency(), sim::SimTime::seconds(10));
  EXPECT_EQ(p.qoe().frames_presented + p.qoe().frames_dropped, 720u);
}

}  // namespace
}  // namespace vafs::stream
