// Tests for supervised fleet execution (src/supervise), organized around
// its correctness claims:
//
//  1. Clean path: a supervised run is bit-identical — aggregate state
//     bits, digest chain, spool bytes — to the in-process fleet runner at
//     any worker count.
//  2. Chaos path: with seeded HarnessChaos injection the run completes;
//     the quarantine set is exactly the deterministic prediction from
//     chaos_fate (every attempt lethal); and the digest chain over the
//     survivors is bit-identical to a serial run over that surviving set.
//  3. Kill/resume: a supervised run stopped at any shard boundary and
//     resumed produces byte-identical artifacts (manifest, spool,
//     quarantine.jsonl) to an uninterrupted run.
//
// The wire and chaos layers get direct property tests (adversarial
// doubles through the hex encoding, fate purity and band coverage).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/grid.h"
#include "exp/runner.h"
#include "fleet/fleet_runner.h"
#include "fleet/shard_plan.h"
#include "obs/trace.h"
#include "supervise/chaos.h"
#include "supervise/supervisor.h"
#include "supervise/wire.h"

#if defined(__SANITIZE_ADDRESS__)
#define VAFS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VAFS_ASAN 1
#endif
#endif

namespace vafs::supervise {
namespace {

using namespace std::string_literals;
namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("vafs_supervise_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

core::SessionConfig small_config() {
  core::SessionConfig config;
  config.media_duration = sim::SimTime::seconds(20);
  config.net = core::NetProfile::kFair;
  config.fixed_rep = 2;
  return config;
}

std::vector<exp::ScenarioSpec> small_grid() {
  exp::ExperimentGrid grid(small_config());
  grid.governors({"ondemand", "vafs"});
  return grid.scenarios();
}

const std::vector<std::uint64_t> kSeeds = {101, 202, 303, 404, 505};

void expect_agg_bits(const exp::Aggregate& a, const exp::Aggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.all_finished, b.all_finished);
  for (const auto& m : exp::Aggregate::metrics()) {
    const sim::OnlineStats::State sa = (a.*m.member).state();
    const sim::OnlineStats::State sb = (b.*m.member).state();
    EXPECT_EQ(sa.n, sb.n) << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.mean), std::bit_cast<std::uint64_t>(sb.mean))
        << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.m2), std::bit_cast<std::uint64_t>(sb.m2)) << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.min), std::bit_cast<std::uint64_t>(sb.min))
        << m.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.max), std::bit_cast<std::uint64_t>(sb.max))
        << m.name;
  }
}

/// Predicted quarantine set: tasks whose first max_attempts chaos fates
/// are all lethal (any fate but kNone kills or wedges the attempt).
std::set<std::uint64_t> predicted_quarantine(const ChaosConfig& chaos, std::uint64_t task_count,
                                             int max_attempts) {
  std::set<std::uint64_t> out;
  for (std::uint64_t t = 0; t < task_count; ++t) {
    bool all_lethal = true;
    for (int a = 0; a < max_attempts; ++a) {
      if (chaos_fate(chaos, t, a) == ChaosFate::kNone) {
        all_lethal = false;
        break;
      }
    }
    if (all_lethal) out.insert(t);
  }
  return out;
}

/// Serial ground truth over a surviving task set: run_one_task in
/// canonical order, skipping quarantined tasks, chaining the digests.
std::uint64_t survivor_chain(const std::vector<exp::ScenarioSpec>& scenarios,
                             const std::vector<std::uint64_t>& seeds, std::size_t shard_size,
                             const std::set<std::uint64_t>& skip) {
  const fleet::ShardPlan plan(scenarios.size(), seeds.size(), shard_size);
  core::SessionArena arena;
  std::uint64_t chain = 0;
  for (std::uint64_t t = 0; t < plan.task_count(); ++t) {
    if (skip.count(t) != 0) continue;
    const fleet::TaskRef ref = plan.task(t);
    const exp::TaskOutcome out =
        exp::run_one_task(scenarios[ref.scenario], seeds[ref.seed_index], {}, true, &arena);
    chain = obs::chain_digest(chain, out.ok() ? out.result.trace_digest : 0);
  }
  return chain;
}

// --------------------------------------------------------- clean path

TEST(Supervise, CleanPathMatchesInProcessFleetBitwise) {
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.jobs = 2;
  fopts.seeds = kSeeds;
  fopts.shard_size = 3;
  const fs::path ref_dir = fresh_dir("clean_ref");
  fopts.checkpoint_dir = ref_dir.string();
  fopts.spool.format = fleet::SpoolFormat::kCsv;
  const fleet::FleetResult ref = run_fleet(scenarios, fopts);
  ASSERT_TRUE(ref.complete()) << ref.error;
  const std::string ref_spool = slurp(ref_dir / "spool.csv");

  for (const int workers : {1, 3}) {
    const fs::path dir = fresh_dir("clean_w" + std::to_string(workers));
    fleet::FleetOptions sup_fopts = fopts;
    sup_fopts.checkpoint_dir = dir.string();
    SuperviseOptions sopts;
    sopts.workers = workers;
    const SupervisedResult sup = run_supervised(scenarios, sup_fopts, sopts);
    ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;
    EXPECT_EQ(sup.fleet.digest_chain, ref.digest_chain);
    EXPECT_EQ(sup.fleet.sessions_run, ref.sessions_run);
    EXPECT_EQ(sup.worker_deaths, 0u);
    EXPECT_EQ(sup.task_retries, 0u);
    EXPECT_TRUE(sup.quarantine.empty());
    ASSERT_EQ(sup.fleet.scenarios.size(), ref.scenarios.size());
    for (std::size_t s = 0; s < ref.scenarios.size(); ++s) {
      expect_agg_bits(sup.fleet.scenarios[s].agg, ref.scenarios[s].agg);
    }
    EXPECT_EQ(slurp(dir / "spool.csv"), ref_spool);
    // Nothing was quarantined, so no quarantine log entries.
    EXPECT_EQ(slurp(dir / "quarantine.jsonl"), "");
  }
}

TEST(Supervise, CapturedTaskFailuresFlowThroughTheWire) {
  // An impossible governor makes every session throw at bring-up; the
  // worker ships the error back as an F line and the fold records it
  // exactly as the in-process path does.
  core::SessionConfig config = small_config();
  exp::ExperimentGrid grid(config);
  grid.governors({"no-such-governor"});
  const auto scenarios = grid.scenarios();

  fleet::FleetOptions fopts;
  fopts.seeds = {101, 202};
  fopts.shard_size = 2;
  const fleet::FleetResult ref = run_fleet(scenarios, fopts);
  ASSERT_TRUE(ref.complete());
  ASSERT_EQ(ref.failures.size(), 2u);

  SuperviseOptions sopts;
  sopts.workers = 2;
  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;
  EXPECT_EQ(sup.fleet.digest_chain, ref.digest_chain);
  ASSERT_EQ(sup.fleet.failures.size(), ref.failures.size());
  for (std::size_t i = 0; i < ref.failures.size(); ++i) {
    EXPECT_EQ(sup.fleet.failures[i].task_index, ref.failures[i].task_index);
    EXPECT_EQ(sup.fleet.failures[i].seed, ref.failures[i].seed);
    EXPECT_EQ(sup.fleet.failures[i].message, ref.failures[i].message);
  }
  // A captured failure is not a worker death.
  EXPECT_EQ(sup.worker_deaths, 0u);
}

// --------------------------------------------------------- chaos path

TEST(Supervise, ChaosRecoveryPreservesTheFullDigestChain) {
  // Rates low enough that no task draws three lethal fates in a row: the
  // run must recover every kill and match the clean chain exactly. The
  // prediction is asserted, not assumed.
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = kSeeds;
  fopts.shard_size = 4;

  const fleet::FleetResult ref = run_fleet(scenarios, fopts);
  ASSERT_TRUE(ref.complete());

  SuperviseOptions sopts;
  sopts.workers = 3;
  sopts.chaos.seed = 7;
  sopts.chaos.exit_rate = 0.2;
  const fleet::ShardPlan plan(scenarios.size(), fopts.seeds.size(), fopts.shard_size);
  ASSERT_TRUE(
      predicted_quarantine(sopts.chaos, plan.task_count(), sopts.max_task_attempts).empty());

  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;
  EXPECT_GT(sup.worker_deaths, 0u);
  EXPECT_GT(sup.task_retries, 0u);
  EXPECT_TRUE(sup.quarantine.empty());
  EXPECT_EQ(sup.fleet.digest_chain, ref.digest_chain);
  EXPECT_EQ(sup.fleet.sessions_run, ref.sessions_run);
  for (std::size_t s = 0; s < ref.scenarios.size(); ++s) {
    expect_agg_bits(sup.fleet.scenarios[s].agg, ref.scenarios[s].agg);
  }
}

TEST(Supervise, QuarantineSetIsTheDeterministicPredictionAndSurvivorsMatchSerial) {
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = kSeeds;
  fopts.shard_size = 4;

  SuperviseOptions sopts;
  sopts.workers = 2;
  sopts.max_task_attempts = 2;
  sopts.chaos.seed = 40;
  sopts.chaos.exit_rate = 0.6;
  const fleet::ShardPlan plan(scenarios.size(), fopts.seeds.size(), fopts.shard_size);
  const std::set<std::uint64_t> predicted =
      predicted_quarantine(sopts.chaos, plan.task_count(), sopts.max_task_attempts);
  ASSERT_FALSE(predicted.empty());
  ASSERT_LT(predicted.size(), plan.task_count());

  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;

  std::set<std::uint64_t> actual;
  for (const QuarantineRecord& q : sup.quarantine) actual.insert(q.task_index);
  EXPECT_EQ(actual, predicted);

  // The acceptance property: the digest chain over the non-quarantined
  // tasks is bitwise identical to a clean serial run over that same
  // surviving set.
  EXPECT_EQ(sup.fleet.digest_chain,
            survivor_chain(scenarios, fopts.seeds, fopts.shard_size, predicted));
  EXPECT_EQ(sup.fleet.sessions_run + predicted.size(), plan.task_count());
}

TEST(Supervise, QuarantineRecordsCarryFullContext) {
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = {101, 202};
  fopts.shard_size = 2;
  const fs::path dir = fresh_dir("qrecord");
  fopts.checkpoint_dir = dir.string();

  SuperviseOptions sopts;
  sopts.workers = 1;
  sopts.max_task_attempts = 2;
  sopts.chaos.seed = 5;
  sopts.chaos.exit_rate = 1.0;  // every attempt dies: everything quarantines

  const fleet::ShardPlan plan(scenarios.size(), fopts.seeds.size(), fopts.shard_size);
  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;
  ASSERT_EQ(sup.quarantine.size(), plan.task_count());
  EXPECT_EQ(sup.fleet.sessions_run, 0u);
  EXPECT_EQ(sup.fleet.digest_chain, 0u);

  for (std::uint64_t t = 0; t < plan.task_count(); ++t) {
    const QuarantineRecord& q = sup.quarantine[t];
    const fleet::TaskRef ref = plan.task(t);
    EXPECT_EQ(q.task_index, t);  // canonical order
    EXPECT_EQ(q.seed, fopts.seeds[ref.seed_index]);
    EXPECT_EQ(q.scenario, scenarios[ref.scenario].id);
    EXPECT_EQ(q.attempts, 2);
    ASSERT_EQ(q.fates.size(), 2u);
    for (const std::string& fate : q.fates) EXPECT_EQ(fate, "exit:41");
    // The chaos announcement of the final attempt is in the stderr tail.
    EXPECT_NE(q.stderr_tail.find("chaos: task " + std::to_string(t) + " attempt 1 fate exit"),
              std::string::npos)
        << q.stderr_tail;
  }

  // The quarantine log has one line per record, in the same order.
  std::istringstream log(slurp(dir / "quarantine.jsonl"));
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(log, line)) {
    EXPECT_EQ(line.rfind("{\"task\":" + std::to_string(lines) + ",", 0), 0u) << line;
    EXPECT_NE(line.find("\"fates\":[\"exit:41\",\"exit:41\"]"), std::string::npos) << line;
    ++lines;
  }
  EXPECT_EQ(lines, plan.task_count());
}

TEST(Supervise, CrashAndAbortTaxonomy) {
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = {101};
  fopts.shard_size = 2;

  SuperviseOptions sopts;
  sopts.workers = 1;
  sopts.max_task_attempts = 1;
  sopts.chaos.seed = 3;
  sopts.chaos.crash = 1.0;

  const SupervisedResult crash = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(crash.fleet.complete()) << crash.fleet.error;
  ASSERT_EQ(crash.quarantine.size(), 2u);
#ifndef VAFS_ASAN
  // ASan intercepts the SEGV and turns it into a reporting exit; the
  // taxonomy is only exact without it.
  EXPECT_EQ(crash.quarantine[0].fates[0], "crash:SIGSEGV");
#endif

  sopts.chaos.crash = 0.0;
  sopts.chaos.abort_rate = 1.0;
  const SupervisedResult aborted = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(aborted.fleet.complete()) << aborted.fleet.error;
  ASSERT_EQ(aborted.quarantine.size(), 2u);
#ifndef VAFS_ASAN
  EXPECT_EQ(aborted.quarantine[0].fates[0], "abort:SIGABRT");
#endif
}

TEST(Supervise, SilentHangIsReapedByHeartbeatTimeout) {
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = {101, 202};
  fopts.shard_size = 4;

  const fleet::FleetResult ref = run_fleet(scenarios, fopts);
  ASSERT_TRUE(ref.complete());

  SuperviseOptions sopts;
  sopts.workers = 2;
  sopts.heartbeat_interval_ms = 20;
  sopts.heartbeat_timeout_ms = 200;
  sopts.chaos.seed = 11;
  sopts.chaos.hang_silent = 0.3;
  const fleet::ShardPlan plan(scenarios.size(), fopts.seeds.size(), fopts.shard_size);
  ASSERT_TRUE(
      predicted_quarantine(sopts.chaos, plan.task_count(), sopts.max_task_attempts).empty());

  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;
  EXPECT_GT(sup.heartbeat_kills, 0u);
  EXPECT_EQ(sup.fleet.digest_chain, ref.digest_chain);
}

TEST(Supervise, StallingTaskIsReapedByTheExternalDeadline) {
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = {101, 202};
  fopts.shard_size = 4;

  const fleet::FleetResult ref = run_fleet(scenarios, fopts);
  ASSERT_TRUE(ref.complete());

  SuperviseOptions sopts;
  sopts.workers = 2;
  sopts.heartbeat_interval_ms = 20;
  sopts.task_deadline_ms = 300;
  sopts.chaos.seed = 11;
  sopts.chaos.stall = 0.3;
  const fleet::ShardPlan plan(scenarios.size(), fopts.seeds.size(), fopts.shard_size);
  ASSERT_TRUE(
      predicted_quarantine(sopts.chaos, plan.task_count(), sopts.max_task_attempts).empty());

  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;
  EXPECT_GT(sup.deadline_kills, 0u);
  // A stalling worker keeps heartbeating: the hang detector must not fire.
  EXPECT_EQ(sup.heartbeat_kills, 0u);
  EXPECT_EQ(sup.fleet.digest_chain, ref.digest_chain);
  for (const QuarantineRecord& q : sup.quarantine) {
    for (const std::string& fate : q.fates) EXPECT_EQ(fate, "deadline:exceeded");
  }
}

#ifndef VAFS_ASAN
TEST(Supervise, LeakingWorkerDiesInsideItsAddressSpaceBudget) {
  // RLIMIT_AS interacts with ASan's shadow memory, so this only runs in
  // plain builds. The leak fate allocates until the budget stops it, then
  // SIGKILLs itself like the kernel OOM killer would.
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = {101};
  fopts.shard_size = 2;

  SuperviseOptions sopts;
  sopts.workers = 1;
  sopts.max_task_attempts = 1;
  sopts.worker_as_limit_mb = 512;
  sopts.chaos_leak_cap_mb = 4096;  // above the AS limit: the limit acts first
  sopts.chaos.seed = 3;
  sopts.chaos.leak = 1.0;

  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;
  EXPECT_EQ(sup.quarantine.size(), 2u);
  EXPECT_GT(sup.worker_deaths, 0u);
}
#endif

// --------------------------------------------------------- kill/resume

TEST(Supervise, KillAndResumeReproducesEveryArtifactByteForByte) {
  const auto scenarios = small_grid();
  const auto base_opts = [&](const fs::path& dir) {
    fleet::FleetOptions fopts;
    fopts.seeds = kSeeds;
    fopts.shard_size = 2;  // 10 tasks -> 5 shards
    fopts.checkpoint_dir = dir.string();
    fopts.checkpoint_every_shards = 1;
    fopts.spool.format = fleet::SpoolFormat::kCsv;
    return fopts;
  };
  SuperviseOptions sopts;
  sopts.workers = 2;
  sopts.max_task_attempts = 2;
  sopts.chaos.seed = 40;
  sopts.chaos.exit_rate = 0.6;  // some tasks quarantine, most survive

  const fs::path ref_dir = fresh_dir("resume_ref");
  const fleet::FleetOptions ref_opts = base_opts(ref_dir);
  const SupervisedResult ref = run_supervised(scenarios, ref_opts, sopts);
  ASSERT_TRUE(ref.fleet.complete()) << ref.fleet.error;
  ASSERT_FALSE(ref.quarantine.empty());
  const std::string ref_manifest = slurp(ref_dir / "manifest.ckpt");
  const std::string ref_spool = slurp(ref_dir / "spool.csv");
  const std::string ref_quarantine = slurp(ref_dir / "quarantine.jsonl");

  for (const std::uint64_t kill_after : {1ull, 2ull, 4ull}) {
    const fs::path dir = fresh_dir("resume_k" + std::to_string(kill_after));
    fleet::FleetOptions fopts = base_opts(dir);
    fopts.on_progress = [kill_after](std::uint64_t done, std::uint64_t) {
      return done < kill_after;
    };
    const SupervisedResult first = run_supervised(scenarios, fopts, sopts);
    ASSERT_TRUE(first.fleet.ok()) << first.fleet.error;
    ASSERT_TRUE(first.fleet.stopped);

    fleet::FleetOptions resume_opts = base_opts(dir);
    resume_opts.resume = true;
    const SupervisedResult second = run_supervised(scenarios, resume_opts, sopts);
    ASSERT_TRUE(second.fleet.complete()) << second.fleet.error;

    EXPECT_EQ(second.fleet.digest_chain, ref.fleet.digest_chain);
    EXPECT_EQ(slurp(dir / "manifest.ckpt"), ref_manifest) << "kill at " << kill_after;
    EXPECT_EQ(slurp(dir / "spool.csv"), ref_spool) << "kill at " << kill_after;
    EXPECT_EQ(slurp(dir / "quarantine.jsonl"), ref_quarantine) << "kill at " << kill_after;
    for (std::size_t s = 0; s < ref.fleet.scenarios.size(); ++s) {
      expect_agg_bits(second.fleet.scenarios[s].agg, ref.fleet.scenarios[s].agg);
    }
  }
}

TEST(Supervise, SupervisedManifestResumesInProcess) {
  // Cross-runner composition: a quarantine-bearing manifest written by a
  // stopped supervised run resumes under plain run_fleet, which carries
  // the quarantine list through untouched and finishes the grid.
  const auto scenarios = small_grid();
  const fs::path dir = fresh_dir("cross_runner");
  fleet::FleetOptions fopts;
  fopts.seeds = kSeeds;
  fopts.shard_size = 2;
  fopts.checkpoint_dir = dir.string();
  fopts.checkpoint_every_shards = 1;

  SuperviseOptions sopts;
  sopts.workers = 2;
  sopts.max_task_attempts = 2;
  sopts.chaos.seed = 40;
  sopts.chaos.exit_rate = 0.6;

  fleet::FleetOptions stop_opts = fopts;
  stop_opts.on_progress = [](std::uint64_t done, std::uint64_t) { return done < 3; };
  const SupervisedResult first = run_supervised(scenarios, stop_opts, sopts);
  ASSERT_TRUE(first.fleet.stopped);
  ASSERT_FALSE(first.quarantine.empty());

  fleet::FleetOptions resume_opts = fopts;
  resume_opts.resume = true;
  const fleet::FleetResult second = run_fleet(scenarios, resume_opts);
  ASSERT_TRUE(second.complete()) << second.error;
  EXPECT_EQ(second.quarantined.size(), first.quarantine.size());
  EXPECT_EQ(second.quarantined[0].task_index, first.quarantine[0].task_index);
  EXPECT_EQ(second.quarantined[0].fates, "exit:41,exit:41");
}

// --------------------------------------------------------- observability

TEST(Supervise, LifecycleEventsLandOnTheHarnessTrack) {
  const auto scenarios = small_grid();
  fleet::FleetOptions fopts;
  fopts.seeds = {101, 202};
  fopts.shard_size = 4;

  obs::Tracer tracer(obs::Tracer::Config{1 << 12});
  SuperviseOptions sopts;
  sopts.workers = 2;
  sopts.max_task_attempts = 2;
  sopts.chaos.seed = 40;
  sopts.chaos.exit_rate = 0.6;
  sopts.tracer = &tracer;

  const SupervisedResult sup = run_supervised(scenarios, fopts, sopts);
  ASSERT_TRUE(sup.fleet.complete()) << sup.fleet.error;

  std::uint64_t spawns = 0;
  std::uint64_t exits = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t retries = 0;
  std::uint64_t quarantines = 0;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const obs::TraceEvent& e = tracer.event(i);
    EXPECT_EQ(obs::event_info(e.kind).track, obs::Track::kHarness);
    switch (e.kind) {
      case obs::EventKind::kWorkerSpawn: ++spawns; break;
      case obs::EventKind::kWorkerExit: ++exits; break;
      case obs::EventKind::kTaskDispatch: ++dispatches; break;
      case obs::EventKind::kTaskRetry: ++retries; break;
      case obs::EventKind::kTaskQuarantine: ++quarantines; break;
      default: break;
    }
  }
  EXPECT_EQ(spawns, sup.worker_spawns);
  EXPECT_GT(exits, 0u);
  EXPECT_GE(dispatches, sup.fleet.sessions_run + sup.quarantine.size());
  EXPECT_EQ(retries, sup.task_retries);
  EXPECT_EQ(quarantines, sup.quarantine.size());
}

// --------------------------------------------------------- chaos layer

TEST(Chaos, FatesArePureAndCoverEveryBand) {
  ChaosConfig config;
  config.seed = 99;
  config.crash = 0.1;
  config.abort_rate = 0.1;
  config.exit_rate = 0.1;
  config.hang_silent = 0.1;
  config.stall = 0.1;
  config.leak = 0.1;

  std::set<ChaosFate> seen;
  for (std::uint64_t t = 0; t < 500; ++t) {
    for (int a = 0; a < 3; ++a) {
      const ChaosFate fate = chaos_fate(config, t, a);
      EXPECT_EQ(fate, chaos_fate(config, t, a));  // pure
      seen.insert(fate);
    }
  }
  // 1500 draws at 10% per band: every fate (and kNone) appears.
  EXPECT_EQ(seen.size(), 7u);

  // Attempt number is part of the key: fates differ across attempts.
  bool any_attempt_difference = false;
  for (std::uint64_t t = 0; t < 100 && !any_attempt_difference; ++t) {
    any_attempt_difference = chaos_fate(config, t, 0) != chaos_fate(config, t, 1);
  }
  EXPECT_TRUE(any_attempt_difference);

  // No rates, no fate — regardless of seed.
  EXPECT_EQ(chaos_fate(ChaosConfig{}, 1, 0), ChaosFate::kNone);
}

// --------------------------------------------------------- wire layer

TEST(Wire, ResultRoundTripsAdversarialDoublesBitwise) {
  WireResult in;
  in.task_index = 0xFFFFFFFFFFFFull;
  in.finished = true;
  in.digest = 0xDEADBEEFCAFEF00Dull;
  in.values[0] = -0.0;
  in.values[1] = std::numeric_limits<double>::infinity();
  in.values[2] = -std::numeric_limits<double>::infinity();
  in.values[3] = std::numeric_limits<double>::quiet_NaN();
  in.values[4] = 5e-324;  // smallest denormal
  for (std::size_t i = 5; i < exp::kMetricCount; ++i) {
    in.values[i] = 1.0 / static_cast<double>(i * 3 + 1);
  }

  std::string line;
  encode_result(&line, in);
  ASSERT_EQ(line.back(), '\n');
  ASSERT_LT(line.size(), 4096u);  // single atomic pipe write

  WireResult out;
  ASSERT_TRUE(parse_result(std::string_view(line).substr(0, line.size() - 1), &out));
  EXPECT_EQ(out.task_index, in.task_index);
  EXPECT_EQ(out.finished, in.finished);
  EXPECT_EQ(out.digest, in.digest);
  for (std::size_t i = 0; i < exp::kMetricCount; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.values[i]),
              std::bit_cast<std::uint64_t>(in.values[i]))
        << i;
  }
}

TEST(Wire, FailureRoundTripsAwkwardBytesAndClampsLongMessages) {
  std::string line;
  const std::string nasty = "newline\nnull\0tab\tquote\""s;
  encode_failure(&line, 42, nasty);
  WireFailure out;
  ASSERT_TRUE(parse_failure(std::string_view(line).substr(0, line.size() - 1), &out));
  EXPECT_EQ(out.task_index, 42u);
  EXPECT_EQ(out.error, nasty);

  line.clear();
  encode_failure(&line, 7, std::string(100000, 'x'));
  ASSERT_LT(line.size(), 4096u);
  ASSERT_TRUE(parse_failure(std::string_view(line).substr(0, line.size() - 1), &out));
  EXPECT_EQ(out.error.size(), kMaxErrorBytes);

  // Empty error message survives too (hex "-" placeholder).
  line.clear();
  encode_failure(&line, 9, "");
  ASSERT_TRUE(parse_failure(std::string_view(line).substr(0, line.size() - 1), &out));
  EXPECT_EQ(out.error, "");
}

TEST(Wire, CommandAndHeartbeatRoundTrip) {
  std::string line;
  encode_task(&line, 123456, 2);
  std::uint64_t task = 0;
  int attempt = 0;
  ASSERT_TRUE(parse_task(std::string_view(line).substr(0, line.size() - 1), &task, &attempt));
  EXPECT_EQ(task, 123456u);
  EXPECT_EQ(attempt, 2);

  line.clear();
  encode_quit(&line);
  EXPECT_TRUE(is_quit(std::string_view(line).substr(0, line.size() - 1)));

  line.clear();
  encode_begin(&line, 77);
  ASSERT_TRUE(parse_begin(std::string_view(line).substr(0, line.size() - 1), &task));
  EXPECT_EQ(task, 77u);

  line.clear();
  WireHeartbeat hb_in{9, 640, 0xABCDEF0123456789ull};
  encode_heartbeat(&line, hb_in);
  WireHeartbeat hb_out;
  ASSERT_TRUE(parse_heartbeat(std::string_view(line).substr(0, line.size() - 1), &hb_out));
  EXPECT_EQ(hb_out.beat, hb_in.beat);
  EXPECT_EQ(hb_out.trace_events, hb_in.trace_events);
  EXPECT_EQ(hb_out.trace_digest, hb_in.trace_digest);

  // Malformed lines are rejected, not misparsed.
  WireResult r;
  EXPECT_FALSE(parse_result("R 1 1", &r));
  EXPECT_FALSE(parse_task("T 1", &task, &attempt));
  EXPECT_FALSE(parse_task("T 1 99999999", &task, &attempt));
  EXPECT_FALSE(parse_heartbeat("H x 0 0000000000000000", &hb_out));
}

}  // namespace
}  // namespace vafs::supervise
