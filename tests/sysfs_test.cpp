// Unit tests for the sysfs emulation: kernel-style semantics at the string
// level (trailing newlines, echo-style whitespace stripping, errno codes).
#include <gtest/gtest.h>

#include "sysfs/tree.h"

namespace vafs::sysfs {
namespace {

TEST(SysfsTree, MkdirCreatesParents) {
  Tree t;
  EXPECT_TRUE(t.mkdir("a/b/c").ok());
  EXPECT_TRUE(t.is_dir("a"));
  EXPECT_TRUE(t.is_dir("a/b"));
  EXPECT_TRUE(t.is_dir("a/b/c"));
}

TEST(SysfsTree, MkdirIsIdempotent) {
  Tree t;
  EXPECT_TRUE(t.mkdir("x/y").ok());
  EXPECT_TRUE(t.mkdir("x/y").ok());
}

TEST(SysfsTree, MkdirThroughAttributeFails) {
  Tree t;
  ASSERT_TRUE(t.mkdir("d").ok());
  ASSERT_TRUE(t.add_attr("d/file", [] { return "v"; }, nullptr).ok());
  EXPECT_EQ(t.mkdir("d/file/sub").error(), Errno::kNotDir);
}

TEST(SysfsTree, ReadAppendsNewline) {
  Tree t;
  ASSERT_TRUE(t.mkdir("dir").ok());
  ASSERT_TRUE(t.add_attr("dir/attr", [] { return "hello"; }, nullptr).ok());
  const auto r = t.read("dir/attr");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "hello\n");
}

TEST(SysfsTree, ReadKeepsExistingNewline) {
  Tree t;
  ASSERT_TRUE(t.mkdir("dir").ok());
  ASSERT_TRUE(t.add_attr("dir/multi", [] { return "a\nb\n"; }, nullptr).ok());
  EXPECT_EQ(t.read("dir/multi").value(), "a\nb\n");
}

TEST(SysfsTree, WriteStripsTrailingWhitespace) {
  Tree t;
  std::string stored;
  ASSERT_TRUE(t.mkdir("dir").ok());
  ASSERT_TRUE(t.add_attr("dir/attr", nullptr,
                         [&](std::string_view v) {
                           stored = std::string(v);
                           return Status();
                         })
                  .ok());
  EXPECT_TRUE(t.write("dir/attr", "1200000\n").ok());
  EXPECT_EQ(stored, "1200000");
  EXPECT_TRUE(t.write("dir/attr", "value \t\n").ok());
  EXPECT_EQ(stored, "value");
}

TEST(SysfsTree, ErrnoSemantics) {
  Tree t;
  ASSERT_TRUE(t.mkdir("d").ok());
  ASSERT_TRUE(t.add_attr("d/ro", [] { return "x"; }, nullptr).ok());
  ASSERT_TRUE(t.add_attr("d/wo", nullptr, [](std::string_view) { return Status(); }).ok());

  EXPECT_EQ(t.read("missing").error(), Errno::kNoEnt);
  EXPECT_EQ(t.read("d").error(), Errno::kIsDir);
  EXPECT_EQ(t.read("d/wo").error(), Errno::kAccess);
  EXPECT_EQ(t.write("d/ro", "v").error(), Errno::kAccess);
  EXPECT_EQ(t.write("d", "v").error(), Errno::kIsDir);
  EXPECT_EQ(t.write("missing/attr", "v").error(), Errno::kNoEnt);
  EXPECT_EQ(t.list("d/ro").error(), Errno::kNotDir);
  EXPECT_EQ(t.list("nope").error(), Errno::kNoEnt);
}

TEST(SysfsTree, StoreHookCanRejectWithEinval) {
  Tree t;
  ASSERT_TRUE(t.mkdir("d").ok());
  ASSERT_TRUE(t.add_attr("d/num", nullptr,
                         [](std::string_view v) {
                           return v == "ok" ? Status() : Status(Errno::kInval);
                         })
                  .ok());
  EXPECT_TRUE(t.write("d/num", "ok").ok());
  EXPECT_EQ(t.write("d/num", "bad").error(), Errno::kInval);
}

TEST(SysfsTree, AddAttrRequiresExistingParent) {
  Tree t;
  EXPECT_EQ(t.add_attr("nodir/attr", [] { return ""; }, nullptr).error(), Errno::kNoEnt);
}

TEST(SysfsTree, AddAttrRejectsDuplicates) {
  Tree t;
  ASSERT_TRUE(t.mkdir("d").ok());
  ASSERT_TRUE(t.add_attr("d/a", [] { return ""; }, nullptr).ok());
  EXPECT_EQ(t.add_attr("d/a", [] { return ""; }, nullptr).error(), Errno::kExist);
}

TEST(SysfsTree, ListIsSorted) {
  Tree t;
  ASSERT_TRUE(t.mkdir("d").ok());
  ASSERT_TRUE(t.add_attr("d/zeta", [] { return ""; }, nullptr).ok());
  ASSERT_TRUE(t.add_attr("d/alpha", [] { return ""; }, nullptr).ok());
  ASSERT_TRUE(t.mkdir("d/mid").ok());
  const auto names = t.list("d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(SysfsTree, RemoveAttributeAndDirectory) {
  Tree t;
  ASSERT_TRUE(t.mkdir("d/sub").ok());
  ASSERT_TRUE(t.add_attr("d/sub/a", [] { return ""; }, nullptr).ok());
  EXPECT_TRUE(t.remove("d/sub/a").ok());
  EXPECT_FALSE(t.exists("d/sub/a"));
  ASSERT_TRUE(t.add_attr("d/sub/b", [] { return ""; }, nullptr).ok());
  EXPECT_TRUE(t.remove("d/sub").ok());  // recursive
  EXPECT_FALSE(t.exists("d/sub"));
  EXPECT_TRUE(t.exists("d"));
  EXPECT_EQ(t.remove("d/sub").error(), Errno::kNoEnt);
}

TEST(SysfsTree, RootListAndPathNormalization) {
  Tree t;
  ASSERT_TRUE(t.mkdir("a").ok());
  EXPECT_TRUE(t.is_dir(""));
  EXPECT_TRUE(t.exists("/a"));       // leading slash tolerated
  EXPECT_TRUE(t.exists("a/"));       // trailing slash tolerated
  EXPECT_TRUE(t.list("").ok());
}

TEST(SysfsTree, ShowHookSeesLiveState) {
  Tree t;
  int counter = 0;
  ASSERT_TRUE(t.mkdir("d").ok());
  ASSERT_TRUE(t.add_attr("d/n", [&] { return std::to_string(counter); }, nullptr).ok());
  EXPECT_EQ(t.read("d/n").value(), "0\n");
  counter = 42;
  EXPECT_EQ(t.read("d/n").value(), "42\n");
}

TEST(SysfsResult, ValueOrFallback) {
  Result<std::string> good(std::string("x"));
  Result<std::string> bad(Errno::kNoEnt);
  EXPECT_EQ(good.value_or("y"), "x");
  EXPECT_EQ(bad.value_or("y"), "y");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errno::kNoEnt);
}

TEST(SysfsErrno, Names) {
  EXPECT_EQ(errno_name(Errno::kNoEnt), "ENOENT");
  EXPECT_EQ(errno_name(Errno::kAccess), "EACCES");
  EXPECT_EQ(errno_name(Errno::kInval), "EINVAL");
  EXPECT_EQ(errno_name(Errno::kOk), "OK");
}

}  // namespace
}  // namespace vafs::sysfs
