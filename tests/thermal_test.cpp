// Unit tests for the thermal substrate: RC response of the temperature
// model and engage/hold/release behaviour of the step-wise throttle.
#include <gtest/gtest.h>

#include <cmath>

#include "cpu/cpufreq_policy.h"
#include "governors/registry.h"
#include "simcore/simulator.h"
#include "thermal/model.h"
#include "thermal/throttle.h"

namespace vafs::thermal {
namespace {

class ThermalTest : public ::testing::Test {
 protected:
  ThermalTest() : cpu_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()) {}

  sim::Simulator sim_;
  cpu::CpuModel cpu_;
};

TEST_F(ThermalTest, IdleStaysNearAmbient) {
  ThermalModel model(sim_, cpu_);
  sim_.run_until(sim::SimTime::seconds(120));
  // Idle power (18 mW) barely moves the junction: < 1 K over ambient.
  EXPECT_NEAR(model.temperature_c(), model.params().ambient_c, 1.0);
}

TEST_F(ThermalTest, StepLoadApproachesSteadyStateExponentially) {
  ThermalModel model(sim_, cpu_);
  cpu_.set_frequency(2'100'000);
  cpu_.submit("hot", 1e15, nullptr);  // saturate at max OPP

  const double power_w = cpu_.power_model().busy_mw(cpu_.opps().max()) / 1000.0;
  const double t_inf = model.params().ambient_c + power_w * model.params().resistance_k_per_w;
  const double rc = model.params().resistance_k_per_w * model.params().capacitance_j_per_k;

  // After one time constant: 63 % of the way to steady state.
  sim_.run_until(sim::SimTime::seconds_f(rc));
  const double expected_1tc =
      t_inf + (model.params().ambient_c - t_inf) * std::exp(-1.0);
  EXPECT_NEAR(model.temperature_c(), expected_1tc, 0.5);

  // After five time constants: effectively at steady state.
  sim_.run_until(sim::SimTime::seconds_f(5 * rc));
  EXPECT_NEAR(model.temperature_c(), t_inf, 0.5);
  EXPECT_GT(t_inf, 45.0);  // a saturated big core must be throttling-hot
  EXPECT_NEAR(model.peak_temperature_c(), model.temperature_c(), 0.5);
}

TEST_F(ThermalTest, CoolsBackDownAfterLoadRemoved) {
  ThermalModel model(sim_, cpu_);
  cpu_.set_frequency(2'100'000);
  const auto id = cpu_.submit("hot", 1e15, nullptr);
  sim_.run_until(sim::SimTime::seconds(600));
  const double hot = model.temperature_c();
  cpu_.cancel(id);
  cpu_.set_frequency(300'000, cpu::Relation::kAtMost);
  sim_.run_until(sim::SimTime::seconds(1200));
  EXPECT_LT(model.temperature_c(), hot - 10.0);
  EXPECT_NEAR(model.temperature_c(), model.params().ambient_c, 2.0);
  EXPECT_NEAR(model.peak_temperature_c(), hot, 0.5);  // peak sticks
}

TEST_F(ThermalTest, ListenerFiresEverySample) {
  ThermalModel model(sim_, cpu_);
  int fired = 0;
  model.add_listener([&](double) { ++fired; });
  sim_.run_until(sim::SimTime::seconds(10));
  EXPECT_EQ(fired, 40);  // 250 ms sampling
}

class ThrottleTest : public ::testing::Test {
 protected:
  ThrottleTest() : cpu_(sim_, cpu::OppTable::mobile_big_core(), cpu::CpuPowerModel()) {
    governors::register_standard(registry_);
    policy_ = std::make_unique<cpu::CpufreqPolicy>(sim_, cpu_, registry_, "performance");
  }

  sim::Simulator sim_;
  cpu::CpuModel cpu_;
  cpu::GovernorRegistry registry_;
  std::unique_ptr<cpu::CpufreqPolicy> policy_;
};

TEST_F(ThrottleTest, EngagesUnderSustainedMaxLoadAndCapsFrequency) {
  // Hot ambient (40 C): a saturated big core sits ~21 K above it, far over
  // the 45 C trip, so the throttle must engage decisively and stay capped
  // (the default 25 C ambient leaves the steady state within the
  // hysteresis band, where engagement legitimately oscillates).
  ThermalParams hot;
  hot.ambient_c = 40.0;
  ThermalModel model(sim_, cpu_, hot);
  ThermalThrottle throttle(model, *policy_);
  cpu_.submit("hot", 1e15, nullptr);  // performance pins max: worst case

  sim_.run_until(sim::SimTime::seconds(600));
  EXPECT_TRUE(throttle.throttling());
  EXPECT_GE(throttle.throttle_events(), 1u);
  EXPECT_LT(policy_->max_khz(), 2'100'000u);
  EXPECT_LT(policy_->cur_khz(), 2'100'000u);
  EXPECT_GT(throttle.throttled_time(), sim::SimTime::seconds(60));
  // The cap must settle the temperature near the trip band, not far above.
  EXPECT_LT(model.temperature_c(), 45.0 + 2.0 * 5 + 3.0);
}

TEST_F(ThrottleTest, ReleasesWhenLoadStops) {
  ThermalParams hot;
  hot.ambient_c = 40.0;
  ThermalModel model(sim_, cpu_, hot);
  ThermalThrottle throttle(model, *policy_);
  const auto id = cpu_.submit("hot", 1e15, nullptr);
  sim_.run_until(sim::SimTime::seconds(600));
  ASSERT_TRUE(throttle.throttling());

  cpu_.cancel(id);
  sim_.run_until(sim::SimTime::seconds(2000));
  EXPECT_FALSE(throttle.throttling());
  EXPECT_EQ(policy_->max_khz(), 2'100'000u);
  // performance governor re-raises once the cap lifts (limits_changed).
  EXPECT_EQ(policy_->cur_khz(), 2'100'000u);
}

TEST_F(ThrottleTest, ColdSocNeverThrottles) {
  ThermalModel model(sim_, cpu_);
  ThermalThrottle throttle(model, *policy_);
  // Light load at min frequency.
  policy_->set_governor("powersave");
  sim_.every(sim::SimTime::millis(100), [this] { cpu_.submit("w", 1e6, nullptr); });
  sim_.run_until(sim::SimTime::seconds(300));
  EXPECT_FALSE(throttle.throttling());
  EXPECT_EQ(throttle.throttle_events(), 0u);
  EXPECT_EQ(throttle.throttled_time(), sim::SimTime::zero());
}

TEST_F(ThrottleTest, StepsAreBounded) {
  ThrottleParams params;
  params.trip_c = 26.0;       // absurdly low trip: everything throttles
  params.max_steps = 3;
  ThermalModel model(sim_, cpu_);
  ThermalThrottle throttle(model, *policy_, params);
  cpu_.submit("hot", 1e15, nullptr);
  sim_.run_until(sim::SimTime::seconds(600));
  EXPECT_LE(throttle.current_step(), 3u);
  // Cap = 3 OPPs below max = 1.2 GHz on the default table.
  EXPECT_GE(policy_->max_khz(), 1'200'000u);
}

}  // namespace
}  // namespace vafs::thermal
