// Unit tests for the trace tooling: CSV emission and the timeline recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "core/session.h"
#include "trace/bandwidth_file.h"
#include "trace/csv.h"
#include "trace/recorder.h"

namespace vafs::trace {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  {
    CsvWriter csv(out, {"a", "b", "c"});
    csv.row().cell(std::string("x")).cell(1.5).cell(std::int64_t{-3});
    csv.row().cell(std::string("y")).cell(0.25).cell(std::int64_t{7});
  }
  EXPECT_EQ(out.str(), "a,b,c\nx,1.5,-3\ny,0.25,7\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  {
    CsvWriter csv(out, {"v"});
    csv.row().cell(std::string("has,comma"));
    csv.row().cell(std::string("has\"quote"));
    csv.row().cell(std::string("has\nnewline"));
  }
  EXPECT_EQ(out.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriter, UnsignedAndDoubleFormatting) {
  std::ostringstream out;
  {
    CsvWriter csv(out, {"u", "d"});
    csv.row().cell(std::uint64_t{18'000'000'000ull}).cell(1.0 / 3.0);
  }
  EXPECT_EQ(out.str(), "u,d\n18000000000,0.333333\n");
}

TEST(CsvWriter, DtorClosesOpenRow) {
  std::ostringstream out;
  {
    CsvWriter csv(out, {"x"});
    csv.row().cell(1.0);
    // no explicit end_row
  }
  EXPECT_EQ(out.str(), "x\n1\n");
}

TEST(TimelineRecorder, SamplesLiveSession) {
  core::SessionConfig config;
  config.governor = "ondemand";
  config.media_duration = sim::SimTime::seconds(20);
  config.net = core::NetProfile::kConstant;
  config.constant_mbps = 12.0;
  config.seed = 5;

  TimelineRecorder recorder(sim::SimTime::millis(100));
  core::SessionHooks hooks;
  hooks.on_ready = [&recorder](core::SessionLive& live) { recorder.attach(live); };
  const auto result = core::run_session(config, hooks);
  ASSERT_TRUE(result.finished);

  const auto& samples = recorder.samples();
  // ~one sample per 100 ms of session wall time.
  const auto expected = static_cast<std::size_t>(result.wall.as_seconds_f() * 10);
  EXPECT_GE(samples.size() + 2, expected);
  EXPECT_LE(samples.size(), expected + 2);

  // Samples are ordered and sane.
  double energy_sum = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(samples[i].at, samples[i - 1].at);
    }
    EXPECT_GE(samples[i].freq_khz, 300'000u);
    EXPECT_LE(samples[i].freq_khz, 2'100'000u);
    EXPECT_GE(samples[i].buffer_seconds, 0.0);
    EXPECT_GE(samples[i].cpu_busy_fraction, 0.0);
    EXPECT_LE(samples[i].cpu_busy_fraction, 1.0 + 1e-9);
    EXPECT_GE(samples[i].cpu_power_mw, 0.0);
    energy_sum += samples[i].cpu_power_mw * 0.1;  // mW * s = mJ
  }
  // Integrated sampled power must roughly match the meter.
  EXPECT_NEAR(energy_sum, result.energy.cpu_mj, result.energy.cpu_mj * 0.1);

  // The player must have been observed in multiple states.
  bool saw_playing = false;
  for (const auto& s : samples) {
    if (s.player_state == static_cast<int>(stream::PlayerState::kPlaying)) saw_playing = true;
  }
  EXPECT_TRUE(saw_playing);
}

// ------------------------------------------------------- bandwidth files

TEST(BandwidthFile, ParsesCommentsAndBlanks) {
  std::istringstream in(
      "# recorded on the 7:40 train\n"
      "0 12.5\n"
      "\n"
      "3.5 4.0   # tunnel\n"
      "10 20\n");
  std::vector<net::TraceBandwidth::Step> steps;
  std::string error;
  ASSERT_TRUE(load_bandwidth_trace(in, &steps, &error)) << error;
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].at, sim::SimTime::zero());
  EXPECT_EQ(steps[0].mbps, 12.5);
  EXPECT_EQ(steps[1].at, sim::SimTime::seconds_f(3.5));
  EXPECT_EQ(steps[2].mbps, 20.0);
}

TEST(BandwidthFile, RejectsMalformedInput) {
  std::vector<net::TraceBandwidth::Step> steps;
  std::string error;

  std::istringstream missing_field("0 1.0\n5\n");
  EXPECT_FALSE(load_bandwidth_trace(missing_field, &steps, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);

  std::istringstream not_at_zero("1 5.0\n");
  EXPECT_FALSE(load_bandwidth_trace(not_at_zero, &steps, &error));

  std::istringstream decreasing("0 5.0\n10 4\n10 3\n");
  EXPECT_FALSE(load_bandwidth_trace(decreasing, &steps, &error));
  EXPECT_NE(error.find("increasing"), std::string::npos);

  std::istringstream negative("0 -5\n");
  EXPECT_FALSE(load_bandwidth_trace(negative, &steps, &error));

  std::istringstream garbage("0 5 extra\n");
  EXPECT_FALSE(load_bandwidth_trace(garbage, &steps, &error));

  std::istringstream empty("# nothing\n");
  EXPECT_FALSE(load_bandwidth_trace(empty, &steps, &error));
}

TEST(BandwidthFile, SaveLoadRoundTrips) {
  const std::vector<net::TraceBandwidth::Step> original = {
      {sim::SimTime::zero(), 12.5},
      {sim::SimTime::seconds_f(3.25), 0.75},
      {sim::SimTime::seconds(60), 40.0},
  };
  std::stringstream buffer;
  save_bandwidth_trace(buffer, original);
  std::vector<net::TraceBandwidth::Step> loaded;
  std::string error;
  ASSERT_TRUE(load_bandwidth_trace(buffer, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].at, original[i].at);
    EXPECT_NEAR(loaded[i].mbps, original[i].mbps, 1e-4);
  }
}

TEST(BandwidthFile, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vafs_trace_test.bwtrace";
  const auto steps = generate_markov_trace(core::net_profile_params(core::NetProfile::kFair),
                                           sim::Rng(3), sim::SimTime::seconds(30));
  ASSERT_GT(steps.size(), 5u);
  std::string error;
  ASSERT_TRUE(save_bandwidth_trace_file(path, steps, &error)) << error;
  std::vector<net::TraceBandwidth::Step> loaded;
  ASSERT_TRUE(load_bandwidth_trace_file(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.size(), steps.size());
}

TEST(BandwidthFile, LoadMissingFileFails) {
  std::vector<net::TraceBandwidth::Step> steps;
  std::string error;
  EXPECT_FALSE(load_bandwidth_trace_file("/no/such/file.bwtrace", &steps, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(BandwidthFile, GeneratorHonoursBounds) {
  net::MarkovBandwidth::Params params;
  params.mean_mbps = 8;
  params.min_mbps = 2;
  params.max_mbps = 20;
  const auto steps = generate_markov_trace(params, sim::Rng(4), sim::SimTime::seconds(120));
  ASSERT_GT(steps.size(), 20u);
  EXPECT_EQ(steps.front().at, sim::SimTime::zero());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_GE(steps[i].mbps, 2.0);
    EXPECT_LE(steps[i].mbps, 20.0);
    if (i > 0) {
      EXPECT_GT(steps[i].at, steps[i - 1].at);
    }
  }
}

TEST(BandwidthFile, TraceDrivenSessionRuns) {
  core::SessionConfig config;
  config.governor = "vafs";
  config.net = core::NetProfile::kTrace;
  config.trace = {{sim::SimTime::zero(), 10.0}, {sim::SimTime::seconds(15), 6.0}};
  config.media_duration = sim::SimTime::seconds(30);
  config.seed = 9;
  const auto r = core::run_session(config);
  ASSERT_TRUE(r.finished);
  EXPECT_LT(r.qoe.drop_ratio(), 0.02);
}

}  // namespace
}  // namespace vafs::trace
