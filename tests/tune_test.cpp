// Tests for the governor auto-tuner (src/tune), organized around its two
// correctness claims:
//
//  1. Determinism: the search trajectory and artifacts are a pure
//     function of the seed — bit-identical at any --jobs/--batch, and a
//     killed-and-resumed search reproduces the uninterrupted artifacts
//     byte for byte.
//  2. Correctness of the search itself: on a space small enough to
//     enumerate, the tuner's winner equals an independent exhaustive
//     constrained argmin (differential oracle), including the infeasible
//     case where no point meets the QoE floors.
//
// Plus unit coverage of the pieces those claims rest on: ParamSpace grid
// arithmetic and validation, the pure TunerRng, the canonical total order
// better(), and state-file truncation/corruption/mismatch refusal.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/grid.h"
#include "exp/runner.h"
#include "tune/param_space.h"
#include "tune/tuner.h"

namespace vafs::tune {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty scratch directory per test.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("vafs_tune_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const fs::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  ASSERT_TRUE(out.good());
}

/// Short real session so fleet-backed searches stay cheap.
core::SessionConfig small_base() {
  core::SessionConfig base;
  base.media_duration = sim::SimTime::seconds(10);
  base.fixed_rep = 2;
  return base;
}

TuneContext vafs_fair_cell(const std::string& name = "cell/fair") {
  TuneContext ctx;
  ctx.name = name;
  ctx.net = core::NetProfile::kFair;
  ctx.net_label = "fair";
  ctx.governor = "vafs";
  return ctx;
}

// ---------------------------------------------------------------------------
// ParamSpace

TEST(ParamSpace, GridArithmetic) {
  ParamSpace space;
  space.dim("safety_margin", 0.05, 0.35, 0.05).dim("predictor_window", 8, 40, 8);
  ASSERT_EQ(space.dims(), 2u);
  EXPECT_EQ(space.def(0).count(), 7u);  // 0.05 .. 0.35
  EXPECT_EQ(space.def(1).count(), 5u);  // 8, 16, 24, 32, 40
  EXPECT_EQ(space.point_count(), 35u);
  EXPECT_DOUBLE_EQ(space.def(0).value(0), 0.05);
  EXPECT_DOUBLE_EQ(space.def(1).value(4), 40.0);

  const std::vector<double> vals = space.values({2, 1});
  EXPECT_DOUBLE_EQ(vals[0], 0.05 + 2 * 0.05);
  EXPECT_DOUBLE_EQ(vals[1], 16.0);
  EXPECT_EQ(space.format({0, 0}), "safety_margin=0.05 predictor_window=8");
}

TEST(ParamSpace, DegenerateSinglePointDimension) {
  ParamSpace space;
  // lo == hi is a valid single-point dimension regardless of step — the
  // count must not divide by the (zero) width.
  space.dim("quantile", 0.9, 0.9, 0.0);
  EXPECT_EQ(space.def(0).count(), 1u);
  EXPECT_EQ(space.point_count(), 1u);
  EXPECT_DOUBLE_EQ(space.values({0})[0], 0.9);
  EXPECT_THROW(space.values({1}), std::out_of_range);
}

TEST(ParamSpace, RejectsInvalidDimensions) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ParamSpace().dim("no_such_knob", 0, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(ParamSpace().dim("quantile", 0.9, 0.8, 0.05), std::invalid_argument);  // inverted
  EXPECT_THROW(ParamSpace().dim("quantile", 0.8, 0.9, 0.0), std::invalid_argument);   // step 0
  EXPECT_THROW(ParamSpace().dim("quantile", 0.8, 0.9, -0.1), std::invalid_argument);
  EXPECT_THROW(ParamSpace().dim("quantile", 0.0, inf, 0.1), std::invalid_argument);
  EXPECT_THROW(ParamSpace().dim("quantile", 0.0, 1.0, 1e-9), std::invalid_argument);  // too wide
  ParamSpace space;
  space.dim("quantile", 0.8, 0.9, 0.05);
  EXPECT_THROW(space.dim("quantile", 0.1, 0.2, 0.05), std::invalid_argument);  // duplicate
}

TEST(ParamSpace, BoundsChecksCandidates) {
  ParamSpace space;
  space.dim("safety_margin", 0.1, 0.3, 0.1);
  EXPECT_THROW(space.values({}), std::out_of_range);      // arity
  EXPECT_THROW(space.values({0, 0}), std::out_of_range);  // arity
  EXPECT_THROW(space.values({3}), std::out_of_range);     // index == count
  core::SessionConfig cfg;
  EXPECT_THROW(space.apply({3}, cfg), std::out_of_range);
}

TEST(ParamSpace, AppliesVafsAndSysfsKnobs) {
  ParamSpace space;
  space.dim("safety_margin", 0.1, 0.3, 0.1)
      .dim("boost_ms", 250, 1000, 250)
      .dim("ondemand.up_threshold", 60, 95, 5);
  core::SessionConfig cfg;
  space.apply({2, 1, 4}, cfg);
  EXPECT_DOUBLE_EQ(cfg.vafs.safety_margin, 0.1 + 2 * 0.1);
  EXPECT_EQ(cfg.vafs.boost_duration, sim::SimTime::millis(500));
  // Sampling-governor knobs route through governor_tunables as the real
  // sysfs attribute path + integer text.
  ASSERT_EQ(cfg.governor_tunables.size(), 1u);
  EXPECT_EQ(cfg.governor_tunables[0].first, "ondemand/up_threshold");
  EXPECT_EQ(cfg.governor_tunables[0].second, "80");
  // Re-applying a different candidate replaces, never duplicates.
  space.apply({0, 0, 0}, cfg);
  ASSERT_EQ(cfg.governor_tunables.size(), 1u);
  EXPECT_EQ(cfg.governor_tunables[0].second, "60");
}

TEST(ParamSpace, FingerprintSeparatesSpaces) {
  ParamSpace a;
  a.dim("safety_margin", 0.1, 0.3, 0.1);
  ParamSpace b;
  b.dim("safety_margin", 0.1, 0.3, 0.05);
  ParamSpace c;
  c.dim("quantile", 0.1, 0.3, 0.1);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  ParamSpace a2;
  a2.dim("safety_margin", 0.1, 0.3, 0.1);
  EXPECT_EQ(a.fingerprint(), a2.fingerprint());
}

TEST(TunerRng, PureAndInRange) {
  const TunerRng rng(12345);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint32_t v = rng.pick(k, 7);
    EXPECT_LT(v, 7u);
    EXPECT_EQ(v, rng.pick(k, 7));  // pure in (seed, k)
  }
  // A different seed gives a different stream (overwhelmingly).
  const TunerRng other(54321);
  int diff = 0;
  for (std::uint64_t k = 0; k < 64; ++k) diff += rng.pick(k, 1000) != other.pick(k, 1000);
  EXPECT_GT(diff, 0);
}

// ---------------------------------------------------------------------------
// The canonical total order.

Score eval_score(bool feasible, double violation, double energy) {
  Score s;
  s.evaluated = true;
  s.feasible = feasible;
  s.violation = violation;
  s.energy_mj = energy;
  return s;
}

TEST(Better, CanonicalOrder) {
  const Candidate c0{0}, c1{1};
  const Score feas = eval_score(true, 0.0, 100.0);
  const Score feas_cheap = eval_score(true, 0.0, 50.0);
  const Score infeas = eval_score(false, 0.5, 1.0);
  const Score infeas_worse = eval_score(false, 2.0, 1.0);
  Score unevaluated;

  // Feasible beats infeasible regardless of energy.
  EXPECT_TRUE(better(feas, c0, infeas, c1));
  EXPECT_FALSE(better(infeas, c1, feas, c0));
  // Among feasible: energy ascending.
  EXPECT_TRUE(better(feas_cheap, c1, feas, c0));
  // Among infeasible: violation ascending.
  EXPECT_TRUE(better(infeas, c0, infeas_worse, c1));
  // Ties broken by lexicographic candidate index — a strict total order.
  EXPECT_TRUE(better(feas, c0, feas, c1));
  EXPECT_FALSE(better(feas, c1, feas, c0));
  // Evaluated beats unevaluated; two unevaluated scores are incomparable.
  EXPECT_TRUE(better(infeas_worse, c1, unevaluated, c0));
  EXPECT_FALSE(better(unevaluated, c0, unevaluated, c1));
}

// ---------------------------------------------------------------------------
// Synthetic-landscape oracle: the search finds the exhaustive constrained
// argmin on a space it can fully enumerate, for several landscapes.

/// Deterministic synthetic evaluator: a fixed pseudo-random landscape per
/// (mix, candidate), with feasibility decided by a synthetic "stall" that
/// the Constraints in play cap at 0.01.
class SyntheticEvaluator : public Evaluator {
 public:
  explicit SyntheticEvaluator(std::uint64_t mix) : mix_(mix) {}

  Score score_of(const Candidate& c) const {
    const TunerRng rng(mix_);
    std::uint64_t key = 0;
    for (const std::uint32_t i : c) key = key * 1000003 + i + 1;
    const double energy = 100.0 + rng.pick(key, 1000);
    const double stall = rng.pick(key + 1, 100) / 1000.0;  // 0 .. 0.099
    Score s;
    s.evaluated = true;
    s.energy_mj = energy;
    s.rebuffer_ratio = stall;
    s.violation = stall > 0.01 ? (stall - 0.01) / 0.01 : 0.0;
    s.feasible = s.violation == 0.0;
    s.runs = 1;
    return s;
  }

  RoundResult evaluate(const RoundRequest& req) override {
    RoundResult out;
    for (const Candidate& c : req.candidates) out.scores.push_back(score_of(c));
    ++rounds;
    return out;
  }

  std::uint64_t mix_;
  int rounds = 0;
};

/// All candidates of a space, lexicographic.
std::vector<Candidate> enumerate(const ParamSpace& space) {
  std::vector<Candidate> all;
  Candidate c(space.dims(), 0);
  for (;;) {
    all.push_back(c);
    std::size_t d = space.dims();
    while (d-- > 0) {
      if (++c[d] < space.def(d).count()) break;
      c[d] = 0;
      if (d == 0) return all;
    }
  }
}

TEST(TunerOracle, SyntheticExhaustiveArgmin) {
  ParamSpace space;
  space.dim("safety_margin", 0.05, 0.35, 0.05).dim("quantile", 0.80, 0.95, 0.05);  // 7 x 4

  for (std::uint64_t mix : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    SyntheticEvaluator eval(mix);
    TunerOptions opts;
    opts.initial_candidates = 64;  // >= 28 points: rung 0 is exhaustive
    opts.seed_schedule = {2};      // single rung
    opts.refine_passes = 4;        // may only re-confirm the argmin
    opts.sensitivity = false;
    const TuneReport report = run_tuner(space, {vafs_fair_cell()}, opts, &eval);
    ASSERT_TRUE(report.complete()) << report.error;
    ASSERT_EQ(report.cells.size(), 1u);

    // Independent exhaustive constrained argmin under the canonical order.
    const std::vector<Candidate> all = enumerate(space);
    std::size_t want = 0;
    for (std::size_t i = 1; i < all.size(); ++i) {
      if (better(eval.score_of(all[i]), all[i], eval.score_of(all[want]), all[want])) want = i;
    }
    EXPECT_EQ(report.cells[0].best, all[want]) << "landscape mix " << mix;
    EXPECT_EQ(report.cells[0].best_score.feasible, eval.score_of(all[want]).feasible);
    EXPECT_DOUBLE_EQ(report.cells[0].best_score.energy_mj, eval.score_of(all[want]).energy_mj);
  }
}

TEST(TunerOracle, SyntheticInfeasibleLandscapeReported) {
  // A landscape where nothing is feasible: every synthetic stall > cap.
  class AllInfeasible : public SyntheticEvaluator {
   public:
    AllInfeasible() : SyntheticEvaluator(9) {}
    RoundResult evaluate(const RoundRequest& req) override {
      RoundResult out;
      for (const Candidate& c : req.candidates) {
        Score s = score_of(c);
        s.violation = 1.0 + s.violation;  // uniformly infeasible
        s.feasible = false;
        out.scores.push_back(s);
      }
      return out;
    }
  };

  ParamSpace space;
  space.dim("safety_margin", 0.1, 0.3, 0.1);
  AllInfeasible eval;
  TunerOptions opts;
  opts.initial_candidates = 8;
  opts.seed_schedule = {1};
  opts.refine_passes = 0;
  opts.sensitivity = false;
  const TuneReport report = run_tuner(space, {vafs_fair_cell()}, opts, &eval);
  ASSERT_TRUE(report.complete()) << report.error;
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_FALSE(report.cells[0].best_score.feasible);
  EXPECT_GT(report.cells[0].best_score.violation, 0.0);
  // The artifact says so too: an infeasible cell carries its violation.
  const std::string json = tuned_configs_json(space, {vafs_fair_cell()}, opts, report).dump();
  EXPECT_NE(json.find("\"feasible\": false"), std::string::npos);
  EXPECT_NE(json.find("\"violation\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Real-fleet differential oracle on a tiny 2-knob space: the tuner's
// winner equals an independent exhaustive constrained argmin computed
// through exp::run_grid, scoring re-derived from the aggregates here.

struct OracleScore {
  bool feasible = false;
  double violation = 0.0;
  double energy = 0.0;
};

/// Independent re-derivation of the constraint-aware objective from a
/// scenario aggregate (mirrors the tuner's documented scoring).
OracleScore oracle_score(const exp::Aggregate& agg, const Constraints& cons) {
  OracleScore s;
  s.energy = agg.total_mj.mean();
  const double wall = agg.wall_s.mean();
  const double rebuffer_ratio = wall > 0.0 ? agg.rebuffer_s.mean() / wall : 0.0;
  const auto excess = [](double x, double cap) {
    return (cap > 0.0 && x > cap) ? (x - cap) / cap : 0.0;
  };
  s.violation = excess(rebuffer_ratio, cons.max_rebuffer_ratio) +
                excess(agg.drop_pct.mean(), cons.max_drop_pct) +
                excess(agg.startup_s.mean(), cons.max_startup_s);
  s.feasible = s.violation == 0.0;
  return s;
}

TEST(TunerOracle, RealFleetTinySpaceMatchesExhaustive) {
  ParamSpace space;
  space.dim("safety_margin", 0.1, 0.3, 0.1).dim("quantile", 0.85, 0.95, 0.1);  // 3 x 2

  TuneContext ctx = vafs_fair_cell();
  TunerOptions opts;
  opts.base = small_base();
  opts.initial_candidates = 8;  // >= 6: exhaustive rung 0
  opts.seed_schedule = {2};     // single rung at full seeds
  opts.refine_passes = 2;       // must not move off the exhaustive argmin
  opts.sensitivity = false;
  opts.jobs = 2;
  const TuneReport report = run_tuner(space, {ctx}, opts);
  ASSERT_TRUE(report.complete()) << report.error;
  ASSERT_EQ(report.cells.size(), 1u);

  // Oracle: evaluate every point the same way the tuner's evaluator
  // does (base + cell override + candidate), through exp::run_grid.
  const std::vector<Candidate> all = enumerate(space);
  std::vector<OracleScore> scores;
  for (const Candidate& c : all) {
    exp::ScenarioSpec spec;
    spec.id = "oracle";
    spec.config = opts.base;
    spec.config.net = ctx.net;
    spec.config.governor = ctx.governor;
    space.apply(c, spec.config);
    exp::RunOptions ro;
    ro.jobs = 2;
    ro.seeds = {opts.eval_seed_base, opts.eval_seed_base + 1};
    ro.trace = true;
    const exp::ResultSet rs = exp::run_grid(std::vector<exp::ScenarioSpec>{spec}, ro);
    ASSERT_TRUE(rs.all().at(0).ok());
    scores.push_back(oracle_score(rs.all().at(0).agg, ctx.constraints));
  }
  std::size_t want = 0;
  const auto oracle_better = [&](std::size_t a, std::size_t b) {
    if (scores[a].feasible != scores[b].feasible) return scores[a].feasible;
    if (scores[a].violation != scores[b].violation) return scores[a].violation < scores[b].violation;
    if (scores[a].energy != scores[b].energy) return scores[a].energy < scores[b].energy;
    return all[a] < all[b];
  };
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (oracle_better(i, want)) want = i;
  }

  EXPECT_EQ(report.cells[0].best, all[want]);
  EXPECT_EQ(report.cells[0].best_score.feasible, scores[want].feasible);
  EXPECT_DOUBLE_EQ(report.cells[0].best_score.energy_mj, scores[want].energy);
}

TEST(TunerOracle, RealFleetImpossibleFloorReportsInfeasible) {
  ParamSpace space;
  space.dim("safety_margin", 0.1, 0.3, 0.1);

  TuneContext ctx = vafs_fair_cell();
  ctx.constraints.max_startup_s = 1e-9;  // no session starts instantly
  TunerOptions opts;
  opts.base = small_base();
  opts.initial_candidates = 4;
  opts.seed_schedule = {1};
  opts.refine_passes = 0;
  opts.sensitivity = false;
  opts.jobs = 2;
  const TuneReport report = run_tuner(space, {ctx}, opts);
  ASSERT_TRUE(report.complete()) << report.error;
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_FALSE(report.cells[0].best_score.feasible);
  EXPECT_GT(report.cells[0].best_score.violation, 0.0);
  const std::string json = tuned_configs_json(space, {ctx}, opts, report).dump();
  EXPECT_NE(json.find("\"feasible\": false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: same seed => byte-identical artifacts at any job count,
// and a killed-and-resumed search reproduces them exactly.

struct SearchSetup {
  ParamSpace space;
  std::vector<TuneContext> contexts;
  TunerOptions opts;
};

/// A sampled (non-exhaustive) search over two cells — big enough to
/// exercise rungs, refinement and the sensitivity sweep.
SearchSetup sampled_search() {
  SearchSetup s;
  s.space.dim("safety_margin", 0.05, 0.35, 0.05).dim("quantile", 0.80, 0.95, 0.05);  // 28 points
  TuneContext fair = vafs_fair_cell("default/fair");
  TuneContext poor = vafs_fair_cell("default/poor");
  poor.net = core::NetProfile::kPoor;
  poor.net_label = "poor";
  poor.constraints.max_rebuffer_ratio = 0.05;
  s.contexts = {fair, poor};
  s.opts.base = small_base();
  s.opts.search_seed = 1;
  s.opts.initial_candidates = 6;
  s.opts.eta = 3;
  s.opts.seed_schedule = {1, 2};
  s.opts.refine_passes = 1;
  s.opts.sensitivity = true;
  return s;
}

TEST(TunerDeterminism, JobCountAndBatchInvariant) {
  const SearchSetup s = sampled_search();

  std::string reference;
  std::uint64_t reference_digest = 0;
  struct Exec {
    int jobs;
    int batch;
  };
  for (const Exec exec : {Exec{1, 1}, Exec{4, 1}, Exec{16, 1}, Exec{16, 3}}) {
    TunerOptions opts = s.opts;
    opts.jobs = exec.jobs;
    opts.batch = exec.batch;
    const TuneReport report = run_tuner(s.space, s.contexts, opts);
    ASSERT_TRUE(report.complete()) << report.error;
    const std::string json = tuned_configs_json(s.space, s.contexts, opts, report).dump();
    const std::string csv = sensitivity_csv(s.space, report);
    if (reference.empty()) {
      reference = json + "\n" + csv;
      reference_digest = report.trajectory_digest;
      EXPECT_GT(report.rounds, 0u);
      EXPECT_EQ(report.rounds_replayed, 0u);
    } else {
      EXPECT_EQ(json + "\n" + csv, reference)
          << "jobs=" << exec.jobs << " batch=" << exec.batch;
      EXPECT_EQ(report.trajectory_digest, reference_digest);
    }
  }
}

TEST(TunerDeterminism, KilledAndResumedReproducesBytes) {
  const SearchSetup s = sampled_search();

  // Uninterrupted reference (with checkpointing on, so the artifact is
  // produced through the exact same code path).
  const fs::path ref_dir = fresh_dir("resume_ref");
  TunerOptions ref_opts = s.opts;
  ref_opts.jobs = 4;
  ref_opts.checkpoint_dir = ref_dir.string();
  const TuneReport ref = run_tuner(s.space, s.contexts, ref_opts);
  ASSERT_TRUE(ref.complete()) << ref.error;
  const std::string ref_json = tuned_configs_json(s.space, s.contexts, ref_opts, ref).dump();
  const std::string ref_csv = sensitivity_csv(s.space, ref);

  // Interrupted run: stop cooperatively partway through (the poll fires
  // between rounds and per folded fleet shard, so this lands mid-search
  // and usually mid-round).
  const fs::path dir = fresh_dir("resume_kill");
  TunerOptions opts = s.opts;
  opts.jobs = 4;
  opts.checkpoint_dir = dir.string();
  int polls = 0;
  opts.keep_going = [&polls] { return ++polls <= 7; };
  const TuneReport killed = run_tuner(s.space, s.contexts, opts);
  ASSERT_TRUE(killed.ok()) << killed.error;
  ASSERT_TRUE(killed.stopped);
  EXPECT_FALSE(killed.complete());

  // Resume to completion: recorded rounds replay, the in-flight round
  // fleet-resumes, and the artifacts match the uninterrupted run.
  opts.keep_going = nullptr;
  opts.resume = true;
  const TuneReport resumed = run_tuner(s.space, s.contexts, opts);
  ASSERT_TRUE(resumed.complete()) << resumed.error;
  EXPECT_GT(resumed.rounds_replayed, 0u);
  EXPECT_EQ(tuned_configs_json(s.space, s.contexts, opts, resumed).dump(), ref_json);
  EXPECT_EQ(sensitivity_csv(s.space, resumed), ref_csv);
  EXPECT_EQ(resumed.trajectory_digest, ref.trajectory_digest);
}

// ---------------------------------------------------------------------------
// State-file safety: corruption, truncation and mismatched searches are
// refused with pointed errors instead of silently resuming wrong state.

/// Runs a cheap synthetic search with checkpointing to produce a state
/// file, returning its path.
fs::path make_state_file(const fs::path& dir, SyntheticEvaluator* eval, const ParamSpace& space,
                         const TunerOptions& base_opts) {
  TunerOptions opts = base_opts;
  opts.checkpoint_dir = dir.string();
  const TuneReport report = run_tuner(space, {vafs_fair_cell()}, opts, eval);
  EXPECT_TRUE(report.complete()) << report.error;
  const fs::path state = dir / "tune-state.ckpt";
  EXPECT_TRUE(fs::exists(state));
  return state;
}

TunerOptions synthetic_opts() {
  TunerOptions opts;
  opts.initial_candidates = 4;
  opts.seed_schedule = {1, 2};
  opts.refine_passes = 1;
  opts.sensitivity = false;
  return opts;
}

TEST(TunerState, ResumeRefusesCorruption) {
  const fs::path dir = fresh_dir("state_corrupt");
  ParamSpace space;
  space.dim("safety_margin", 0.05, 0.35, 0.05);
  SyntheticEvaluator eval(3);
  const fs::path state = make_state_file(dir, &eval, space, synthetic_opts());

  std::string body = slurp(state);
  ASSERT_GT(body.size(), 40u);
  body[body.size() / 2] = body[body.size() / 2] == 'a' ? 'b' : 'a';
  spit(state, body);

  TunerOptions opts = synthetic_opts();
  opts.checkpoint_dir = dir.string();
  opts.resume = true;
  SyntheticEvaluator eval2(3);
  const TuneReport report = run_tuner(space, {vafs_fair_cell()}, opts, &eval2);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error.find("resume refused"), std::string::npos) << report.error;
  EXPECT_NE(report.error.find("checksum mismatch"), std::string::npos) << report.error;
}

TEST(TunerState, ResumeRefusesTruncation) {
  const fs::path dir = fresh_dir("state_trunc");
  ParamSpace space;
  space.dim("safety_margin", 0.05, 0.35, 0.05);
  SyntheticEvaluator eval(3);
  const fs::path state = make_state_file(dir, &eval, space, synthetic_opts());

  std::string body = slurp(state);
  spit(state, body.substr(0, body.size() - 10));  // tear off the end line

  TunerOptions opts = synthetic_opts();
  opts.checkpoint_dir = dir.string();
  opts.resume = true;
  SyntheticEvaluator eval2(3);
  const TuneReport report = run_tuner(space, {vafs_fair_cell()}, opts, &eval2);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error.find("truncated"), std::string::npos) << report.error;
}

TEST(TunerState, ResumeRefusesDifferentSearch) {
  const fs::path dir = fresh_dir("state_mismatch");
  ParamSpace space;
  space.dim("safety_margin", 0.05, 0.35, 0.05);
  SyntheticEvaluator eval(3);
  make_state_file(dir, &eval, space, synthetic_opts());

  // Same directory, different space: refused before any round runs.
  ParamSpace other;
  other.dim("quantile", 0.80, 0.95, 0.05);
  TunerOptions opts = synthetic_opts();
  opts.checkpoint_dir = dir.string();
  opts.resume = true;
  SyntheticEvaluator eval2(3);
  const TuneReport report = run_tuner(other, {vafs_fair_cell()}, opts, &eval2);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error.find("different parameter space"), std::string::npos) << report.error;

  // Different search options over the same space: also refused.
  TunerOptions changed = synthetic_opts();
  changed.search_seed = 999;
  changed.checkpoint_dir = dir.string();
  changed.resume = true;
  SyntheticEvaluator eval3(3);
  const TuneReport report2 = run_tuner(space, {vafs_fair_cell()}, changed, &eval3);
  ASSERT_FALSE(report2.ok());
  EXPECT_NE(report2.error.find("different parameter space or search configuration"),
            std::string::npos)
      << report2.error;
}

TEST(TunerState, FreshRunScrubsStaleState) {
  const fs::path dir = fresh_dir("state_scrub");
  ParamSpace space;
  space.dim("safety_margin", 0.05, 0.35, 0.05);
  SyntheticEvaluator eval(3);
  make_state_file(dir, &eval, space, synthetic_opts());

  // A fresh (non-resume) run into the same dirty directory must not
  // replay the previous search's rounds.
  TunerOptions opts = synthetic_opts();
  opts.checkpoint_dir = dir.string();
  SyntheticEvaluator eval2(3);
  const TuneReport report = run_tuner(space, {vafs_fair_cell()}, opts, &eval2);
  ASSERT_TRUE(report.complete()) << report.error;
  EXPECT_EQ(report.rounds_replayed, 0u);
  EXPECT_GT(eval2.rounds, 0);
}

// ---------------------------------------------------------------------------
// Validation and artifact shape.

TEST(Tuner, ValidatesInputs) {
  ParamSpace space;
  space.dim("safety_margin", 0.1, 0.3, 0.1);
  SyntheticEvaluator eval(1);

  EXPECT_FALSE(run_tuner(ParamSpace(), {vafs_fair_cell()}, synthetic_opts(), &eval).ok());
  EXPECT_FALSE(run_tuner(space, {}, synthetic_opts(), &eval).ok());

  TuneContext unnamed = vafs_fair_cell("");
  EXPECT_FALSE(run_tuner(space, {unnamed}, synthetic_opts(), &eval).ok());
  TuneContext spacey = vafs_fair_cell("a b");
  EXPECT_FALSE(run_tuner(space, {spacey}, synthetic_opts(), &eval).ok());
  EXPECT_FALSE(
      run_tuner(space, {vafs_fair_cell("x"), vafs_fair_cell("x")}, synthetic_opts(), &eval).ok());

  TunerOptions bad = synthetic_opts();
  bad.seed_schedule = {4, 2};  // descending
  EXPECT_FALSE(run_tuner(space, {vafs_fair_cell()}, bad, &eval).ok());
  bad = synthetic_opts();
  bad.seed_schedule.clear();
  EXPECT_FALSE(run_tuner(space, {vafs_fair_cell()}, bad, &eval).ok());
  bad = synthetic_opts();
  bad.eta = 1;
  EXPECT_FALSE(run_tuner(space, {vafs_fair_cell()}, bad, &eval).ok());
}

TEST(Tuner, ArtifactShape) {
  ParamSpace space;
  space.dim("safety_margin", 0.1, 0.3, 0.1).dim("quantile", 0.85, 0.95, 0.05);
  SyntheticEvaluator eval(5);
  TunerOptions opts = synthetic_opts();
  opts.sensitivity = true;
  const std::vector<TuneContext> contexts = {vafs_fair_cell("flag/fair")};
  const TuneReport report = run_tuner(space, contexts, opts, &eval);
  ASSERT_TRUE(report.complete()) << report.error;

  const std::string json = tuned_configs_json(space, contexts, opts, report).dump();
  for (const char* needle :
       {"\"schema_version\": 1", "\"search\":", "\"trajectory_digest\":", "\"space\":",
        "\"cells\":", "\"cell\": \"flag/fair\"", "\"safety_margin\":", "\"quantile\":",
        "\"objective\":", "\"constraints\":", "\"index\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  const std::string csv = sensitivity_csv(space, report);
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "cell,param,index,value,feasible,violation,energy_mj,rebuffer_ratio,drop_pct,"
            "startup_s,bitrate_kbps,guard_rebuffer_s");
  // One swept row per grid point per dimension (3 + 3 here).
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].sensitivity.size(), 6u);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')), 1u + 6u);
}

// The sysfs-tunable path end to end: a real session accepts a tuned
// sampling-governor attribute and rejects an unknown one with a captured
// failure (not an abort) through the grid runner.
TEST(Tuner, GovernorTunablesApplyThroughSysfs) {
  exp::ScenarioSpec good;
  good.id = "good";
  good.config = small_base();
  good.config.governor = "ondemand";
  ParamSpace space;
  space.dim("ondemand.up_threshold", 60, 95, 5);
  space.apply({4}, good.config);  // up_threshold = 80

  exp::ScenarioSpec bad = good;
  bad.id = "bad";
  bad.config.governor_tunables = {{"ondemand/no_such_attr", "1"}};

  exp::RunOptions ro;
  ro.seeds = {9000};
  const exp::ResultSet rs = exp::run_grid(std::vector<exp::ScenarioSpec>{good, bad}, ro);
  ASSERT_EQ(rs.all().size(), 2u);
  EXPECT_TRUE(rs.all().at(0).ok());
  EXPECT_TRUE(rs.all().at(0).run0().finished);
  ASSERT_EQ(rs.all().at(1).failures.size(), 1u);
  EXPECT_NE(rs.all().at(1).failures[0].message.find("governor tunable"), std::string::npos)
      << rs.all().at(1).failures[0].message;
}

}  // namespace
}  // namespace vafs::tune
