// Tuned-config consumption (src/tune/tuned_configs): schema validation of
// the bench_f15 artifact, knob application through the shared registry —
// and the shipping regression on the checked-in artifact itself: replayed
// on the exact evaluation protocol the search used, every tuned cell must
// hold the QoE floors and cost no more energy than stock VAFS, with a
// strict saving on at least one (profile × net) cell. The replay is
// bit-deterministic, so a pass here is a property of the artifact, not of
// the machine running the test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/session.h"
#include "device/profile.h"
#include "exp/runner.h"
#include "tune/param_space.h"
#include "tune/tuned_configs.h"

namespace vafs::tune {
namespace {

// A minimal valid artifact body for schema tests.
std::string artifact(const std::string& cells) {
  return R"({"schema_version": 1, "cells": [)" + cells + "]}";
}

std::string cell_body(const std::string& profile, const std::string& net,
                      const std::string& params) {
  return R"({"cell": ")" + profile + "/" + net + R"(", "profile": ")" + profile +
         R"(", "net": ")" + net + R"(", "governor": "vafs", "feasible": true, "params": {)" +
         params + R"(}, "objective": {"energy_mj": 1000.0, "rebuffer_ratio": 0.001,)" +
         R"( "drop_pct": 0.5}})";
}

TEST(TunedConfigs, ParsesCellsAndFindsByProfileAndNet) {
  TunedConfigs cfgs;
  std::string error;
  ASSERT_TRUE(TunedConfigs::parse(
      artifact(cell_body("default", "fair", R"("safety_margin": 0.25, "quantile": 0.8)") + "," +
               cell_body("flagship", "poor", R"("boost_ms": 750)")),
      &cfgs, &error))
      << error;
  ASSERT_EQ(cfgs.cells().size(), 2u);

  // "" and "default" both address the legacy device.
  const TunedCell* cell = cfgs.find("", "fair");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell, cfgs.find("default", "fair"));
  EXPECT_TRUE(cell->feasible);
  EXPECT_EQ(cell->energy_mj, 1000.0);
  EXPECT_EQ(cfgs.find("default", "poor"), nullptr);
  EXPECT_EQ(cfgs.find("flagship", "fair"), nullptr);
  ASSERT_NE(cfgs.find("flagship", "poor"), nullptr);

  // apply() lands the knob values on the config through the registry.
  core::SessionConfig config;
  cell->apply(config);
  EXPECT_EQ(config.vafs.safety_margin, 0.25);
  EXPECT_EQ(config.vafs.predictor.quantile, 0.8);
}

TEST(TunedConfigs, AcceptsTheBenchJsonWrapper) {
  // bench_f15 also embeds the artifact under "tuned" in BENCH_f15.json;
  // the loader takes either form.
  TunedConfigs cfgs;
  std::string error;
  const std::string wrapped =
      R"({"bench": "f15", "tuned": )" +
      artifact(cell_body("default", "fair", R"("safety_margin": 0.1)")) + "}";
  ASSERT_TRUE(TunedConfigs::parse(wrapped, &cfgs, &error)) << error;
  EXPECT_EQ(cfgs.cells().size(), 1u);
}

TEST(TunedConfigs, RejectsBadSchemas) {
  TunedConfigs cfgs;
  std::string error;
  // Malformed JSON, wrong top-level kind, wrong/missing version, missing
  // cells, unregistered knob, non-numeric param: all loud failures.
  EXPECT_FALSE(TunedConfigs::parse("{", &cfgs, &error));
  EXPECT_FALSE(TunedConfigs::parse("[]", &cfgs, &error));
  EXPECT_FALSE(TunedConfigs::parse(R"({"schema_version": 2, "cells": []})", &cfgs, &error));
  EXPECT_FALSE(TunedConfigs::parse(R"({"cells": []})", &cfgs, &error));
  EXPECT_FALSE(TunedConfigs::parse(
      artifact(cell_body("default", "fair", R"("not_a_knob": 1.0)")), &cfgs, &error));
  EXPECT_NE(error.find("not_a_knob"), std::string::npos);
  EXPECT_FALSE(TunedConfigs::parse(
      artifact(cell_body("default", "fair", R"("safety_margin": "high")")), &cfgs, &error));
}

TEST(TunedConfigs, ApplyKnobCoversRegistryAndRejectsUnknowns) {
  core::SessionConfig config;
  for (const std::string& name : ParamSpace::knob_names()) {
    EXPECT_TRUE(apply_knob(name, 1.0, config)) << name;
  }
  EXPECT_FALSE(apply_knob("no_such_knob", 1.0, config));
}

// --- The checked-in artifact (bench/baselines/tuned_configs.json) ---

TunedConfigs checked_in() {
  TunedConfigs cfgs;
  std::string error;
  if (!TunedConfigs::load_file(VAFS_TUNED_CONFIGS_PATH, &cfgs, &error)) {
    ADD_FAILURE() << error;
  }
  return cfgs;
}

TEST(CheckedInTunedConfigs, CoverEveryProfileAndNetFeasibly) {
  const TunedConfigs cfgs = checked_in();
  for (const std::string& profile : device::profile_names()) {
    for (const char* net : {"fair", "poor"}) {
      const TunedCell* cell = cfgs.find(profile, net);
      ASSERT_NE(cell, nullptr) << profile << "/" << net;
      EXPECT_TRUE(cell->feasible) << profile << "/" << net;
      EXPECT_EQ(cell->governor, "vafs");
      EXPECT_FALSE(cell->params.empty());
    }
  }
}

TEST(CheckedInTunedConfigs, TunedBeatsStockVafsAtEqualQoE) {
  const TunedConfigs cfgs = checked_in();
  ASSERT_FALSE(cfgs.empty());

  // The bench_f15 evaluation protocol, verbatim: 720p, 60 s media, the
  // tuner's downloader settings, and its full seed budget 9000..9007.
  core::SessionConfig base;
  base.fixed_rep = 2;
  base.media_duration = sim::SimTime::seconds(60);
  base.downloader.attempt_timeout = sim::SimTime::seconds(6);
  base.downloader.max_attempts = 4;

  exp::RunOptions ropts;
  ropts.seeds.clear();
  for (std::uint64_t j = 0; j < 8; ++j) ropts.seeds.push_back(9000 + j);

  int strict_wins = 0;
  for (const TunedCell& cell : cfgs.cells()) {
    SCOPED_TRACE(cell.cell);
    exp::ScenarioSpec stock;
    stock.id = "stock";
    stock.config = base;
    if (cell.profile != "default") stock.config.profile = device::profile(cell.profile);
    stock.config.net = cell.net == "poor" ? core::NetProfile::kPoor : core::NetProfile::kFair;
    stock.config.governor = cell.governor;
    exp::ScenarioSpec tuned = stock;
    tuned.id = "tuned";
    cell.apply(tuned.config);

    const exp::ResultSet rs = exp::run_grid({stock, tuned}, ropts);
    const exp::Aggregate& s = rs.all()[0].agg;
    const exp::Aggregate& t = rs.all()[1].agg;
    ASSERT_TRUE(rs.all()[0].ok() && rs.all()[1].ok());

    // Equal QoE: the tuned config holds the same floors the search
    // enforced (F15's constraints for this network class).
    const double max_rebuffer_ratio = cell.net == "poor" ? 0.05 : 0.01;
    EXPECT_LE(t.rebuffer_s.mean() / t.wall_s.mean(), max_rebuffer_ratio);
    EXPECT_LE(t.drop_pct.mean(), 2.0);
    EXPECT_LE(t.startup_s.mean(), 5.0);

    // Energy: never worse than stock, strictly better somewhere.
    EXPECT_LE(t.total_mj.mean(), s.total_mj.mean());
    if (t.total_mj.mean() < s.total_mj.mean()) ++strict_wins;
  }
  EXPECT_GE(strict_wins, 1);
}

}  // namespace
}  // namespace vafs::tune
