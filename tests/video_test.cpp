// Unit tests for the media substrate: manifest arithmetic, the content
// model's statistical properties (GOP weighting, bitrate fidelity,
// determinism), and the playback buffer.
#include <gtest/gtest.h>

#include "video/buffer.h"
#include "video/content.h"
#include "video/manifest.h"
#include "video/qoe.h"

namespace vafs::video {
namespace {

Manifest vod_2min() { return Manifest::typical_vod("t", sim::SimTime::seconds(120)); }

// --------------------------------------------------------------- Manifest

TEST(Manifest, SegmentCountCeils) {
  const Manifest even = vod_2min();
  EXPECT_EQ(even.segment_count(), 30u);  // 120 / 4

  const Manifest ragged("r", sim::SimTime::seconds(4), sim::SimTime::seconds(10),
                        {{"only", 1000, 640, 360, 30.0}});
  EXPECT_EQ(ragged.segment_count(), 3u);
  EXPECT_EQ(ragged.segment_duration(0), sim::SimTime::seconds(4));
  EXPECT_EQ(ragged.segment_duration(2), sim::SimTime::seconds(2));  // tail
}

TEST(Manifest, FramesPerSegment) {
  const Manifest m = vod_2min();
  EXPECT_EQ(m.frames_in_segment(0, 0), 120u);  // 4 s * 30 fps
  EXPECT_EQ(m.first_frame_of_segment(0, 0), 0u);
  EXPECT_EQ(m.first_frame_of_segment(0, 5), 600u);
}

TEST(Manifest, LadderIsOrderedAndPlausible) {
  const Manifest m = vod_2min();
  ASSERT_EQ(m.representation_count(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(m.representation(i).bitrate_kbps, m.representation(i - 1).bitrate_kbps);
    EXPECT_GT(m.representation(i).pixels(), m.representation(i - 1).pixels());
  }
}

TEST(Manifest, RepIndexForBitrate) {
  const Manifest m = vod_2min();  // 800 / 1200 / 2500 / 5000
  EXPECT_EQ(m.rep_index_for_bitrate(100), 0u);   // below all: lowest
  EXPECT_EQ(m.rep_index_for_bitrate(800), 0u);
  EXPECT_EQ(m.rep_index_for_bitrate(1199), 0u);
  EXPECT_EQ(m.rep_index_for_bitrate(2600), 2u);
  EXPECT_EQ(m.rep_index_for_bitrate(99'999), 3u);
}

// ------------------------------------------------------------ ContentModel

class ContentTest : public ::testing::Test {
 protected:
  ContentTest() : manifest_(vod_2min()), content_(99, ContentParams{}, &manifest_) {}
  Manifest manifest_;
  ContentModel content_;
};

TEST_F(ContentTest, DeterministicAcrossInstances) {
  ContentModel other(99, ContentParams{}, &manifest_);
  for (std::uint64_t f : {0ull, 1ull, 100ull, 3599ull}) {
    EXPECT_EQ(content_.frame(2, f).bytes, other.frame(2, f).bytes);
    EXPECT_EQ(content_.frame(2, f).decode_cycles, other.frame(2, f).decode_cycles);
  }
}

TEST_F(ContentTest, DifferentSeedsDiffer) {
  ContentModel other(100, ContentParams{}, &manifest_);
  int same = 0;
  for (std::uint64_t f = 0; f < 50; ++f) {
    if (content_.frame(2, f).bytes == other.frame(2, f).bytes) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST_F(ContentTest, GopStructure) {
  // Frame 0, 30, 60... are IDR and substantially larger than P frames.
  EXPECT_TRUE(content_.frame(2, 0).is_idr);
  EXPECT_TRUE(content_.frame(2, 30).is_idr);
  EXPECT_FALSE(content_.frame(2, 1).is_idr);
  EXPECT_FALSE(content_.frame(2, 29).is_idr);

  double idr_sum = 0, p_sum = 0;
  int idr_n = 0, p_n = 0;
  for (std::uint64_t f = 0; f < 600; ++f) {
    const FrameInfo info = content_.frame(2, f);
    if (info.is_idr) {
      idr_sum += static_cast<double>(info.bytes);
      ++idr_n;
    } else {
      p_sum += static_cast<double>(info.bytes);
      ++p_n;
    }
  }
  EXPECT_GT(idr_sum / idr_n, 3.0 * (p_sum / p_n));
}

TEST_F(ContentTest, SegmentBytesMatchNominalBitrate) {
  // 720p = 2500 kbps over 4 s ~ 1.25 MB per segment; jitter averages out.
  double total = 0;
  for (std::size_t s = 0; s < 30; ++s) {
    total += static_cast<double>(content_.segment_bytes(2, s));
  }
  const double mean_segment = total / 30.0;
  EXPECT_NEAR(mean_segment, 2500.0 * 1000 / 8 * 4, mean_segment * 0.08);
}

TEST_F(ContentTest, HigherRepsCostMoreCyclesAndBytes) {
  for (std::size_t rep = 1; rep < 4; ++rep) {
    EXPECT_GT(content_.segment_bytes(rep, 0), content_.segment_bytes(rep - 1, 0));
    EXPECT_GT(content_.segment_cycles(rep, 0), content_.segment_cycles(rep - 1, 0));
  }
}

TEST_F(ContentTest, DecodeRateMagnitudes) {
  // Sustained decode demand (cycles/s) must be within a mobile-soft-decoder
  // range: ~100-200 MHz at 360p, ~300-600 MHz at 720p, < 1.4 GHz at 1080p.
  auto demand_hz = [&](std::size_t rep) {
    return content_.segment_cycles(rep, 0) / 4.0;  // 4-second segment
  };
  EXPECT_GT(demand_hz(0), 50e6);
  EXPECT_LT(demand_hz(0), 250e6);
  EXPECT_GT(demand_hz(2), 250e6);
  EXPECT_LT(demand_hz(2), 700e6);
  EXPECT_GT(demand_hz(3), demand_hz(2));
  EXPECT_LT(demand_hz(3), 1.4e9);
}

TEST_F(ContentTest, SegmentTotalsEqualFrameSums) {
  std::uint64_t bytes = 0;
  double cycles = 0;
  for (std::uint64_t f = 0; f < 120; ++f) {
    const FrameInfo info = content_.frame(1, f);
    bytes += info.bytes;
    cycles += info.decode_cycles;
  }
  EXPECT_EQ(content_.segment_bytes(1, 0), bytes);
  EXPECT_DOUBLE_EQ(content_.segment_cycles(1, 0), cycles);
}

// ---------------------------------------------------------- PlaybackBuffer

TEST(PlaybackBuffer, PushAndLevel) {
  PlaybackBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.push({0, 2, sim::SimTime::seconds(4), 1000});
  buffer.push({1, 2, sim::SimTime::seconds(4), 1000});
  EXPECT_EQ(buffer.level(), sim::SimTime::seconds(8));
  EXPECT_EQ(buffer.segment_count(), 2u);
  EXPECT_EQ(buffer.next_segment_index(), 2u);
}

TEST(PlaybackBuffer, DrainCrossesSegmentBoundaries) {
  PlaybackBuffer buffer;
  buffer.push({0, 0, sim::SimTime::seconds(4), 0});
  buffer.push({1, 0, sim::SimTime::seconds(4), 0});
  EXPECT_EQ(buffer.drain(sim::SimTime::seconds(5)), sim::SimTime::seconds(5));
  EXPECT_EQ(buffer.level(), sim::SimTime::seconds(3));
  EXPECT_EQ(buffer.segment_count(), 1u);
  EXPECT_EQ(buffer.front().segment_index, 1u);
}

TEST(PlaybackBuffer, DrainStopsWhenDry) {
  PlaybackBuffer buffer;
  buffer.push({0, 0, sim::SimTime::seconds(4), 0});
  EXPECT_EQ(buffer.drain(sim::SimTime::seconds(10)), sim::SimTime::seconds(4));
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.level(), sim::SimTime::zero());
  EXPECT_EQ(buffer.drain(sim::SimTime::seconds(1)), sim::SimTime::zero());
  // The consumed index keeps advancing for the *next* push.
  EXPECT_EQ(buffer.next_segment_index(), 1u);
}

TEST(PlaybackBuffer, ManySmallDrainsEqualOneBig) {
  PlaybackBuffer a, b;
  for (std::size_t i = 0; i < 3; ++i) {
    a.push({i, 0, sim::SimTime::seconds(4), 0});
    b.push({i, 0, sim::SimTime::seconds(4), 0});
  }
  for (int i = 0; i < 300; ++i) a.drain(sim::SimTime::millis(33));
  b.drain(sim::SimTime::millis(33 * 300));
  EXPECT_EQ(a.level(), b.level());
  EXPECT_EQ(a.segment_count(), b.segment_count());
}

TEST(PlaybackBuffer, PeakLevelTracksHighWaterMark) {
  PlaybackBuffer buffer;
  buffer.push({0, 0, sim::SimTime::seconds(4), 0});
  buffer.push({1, 0, sim::SimTime::seconds(4), 0});
  buffer.drain(sim::SimTime::seconds(6));
  buffer.push({2, 0, sim::SimTime::seconds(4), 0});
  EXPECT_EQ(buffer.peak_level(), sim::SimTime::seconds(8));
}

// -------------------------------------------------------------------- QoE

TEST(QoeStats, Ratios) {
  QoeStats q;
  q.frames_presented = 90;
  q.frames_dropped = 10;
  EXPECT_DOUBLE_EQ(q.drop_ratio(), 0.1);

  q.rebuffer_time = sim::SimTime::seconds(5);
  EXPECT_DOUBLE_EQ(q.rebuffer_ratio(sim::SimTime::seconds(95)), 0.05);

  const QoeStats empty;
  EXPECT_EQ(empty.drop_ratio(), 0.0);
  EXPECT_EQ(empty.rebuffer_ratio(sim::SimTime::zero()), 0.0);
}

}  // namespace
}  // namespace vafs::video
