#!/usr/bin/env python3
"""Coverage gate: parse an lcov tracefile and enforce a minimum line
coverage over selected source prefixes.

Usage::

    python3 tools/check_coverage.py coverage.info \
        --path src/simcore --path src/exp --min-lines 80

Understands the lcov ``.info`` format directly (``SF:``, ``DA:``,
``end_of_record``), so it needs no lcov installation itself. Paths are
matched by substring against each record's source-file path, which keeps the
check independent of the absolute build prefix lcov happened to record.

A per-prefix and per-file breakdown goes to stdout and, when
``GITHUB_STEP_SUMMARY`` is set, to the GitHub Actions job summary.

Exit codes: 0 ok, 1 below threshold, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import os
import sys


def parse_lcov(path: str) -> dict[str, tuple[int, int]]:
    """Returns {source_file: (lines_hit, lines_instrumented)}."""
    per_file: dict[str, tuple[int, int]] = {}
    current = None
    hit = total = 0
    try:
        fh = open(path, "r", encoding="utf-8", errors="replace")
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    with fh:
        for line in fh:
            line = line.strip()
            if line.startswith("SF:"):
                current, hit, total = line[3:], 0, 0
            elif line.startswith("DA:") and current is not None:
                # DA:<line>,<execution count>[,<checksum>]
                parts = line[3:].split(",")
                if len(parts) >= 2:
                    total += 1
                    if parts[1] != "0" and not parts[1].startswith("-"):
                        hit += 1
            elif line == "end_of_record" and current is not None:
                prev_hit, prev_total = per_file.get(current, (0, 0))
                per_file[current] = (prev_hit + hit, prev_total + total)
                current = None
    if not per_file:
        sys.exit(f"error: no coverage records found in {path}")
    return per_file


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("tracefile", help="lcov .info tracefile")
    parser.add_argument("--path", action="append", required=True, metavar="PREFIX",
                        help="source path substring to gate on (repeatable)")
    parser.add_argument("--min-lines", type=float, default=80.0,
                        help="minimum line coverage percent (default 80)")
    args = parser.parse_args()

    per_file = parse_lcov(args.tracefile)

    lines = ["### Coverage gate", "",
             f"Minimum line coverage: **{args.min_lines:.0f}%**", "",
             "| scope | lines hit | lines total | coverage | status |",
             "|---|---:|---:|---:|---|"]
    failures = []
    for prefix in args.path:
        files = {f: c for f, c in per_file.items() if prefix in f}
        hit = sum(h for h, _ in files.values())
        total = sum(t for _, t in files.values())
        if total == 0:
            failures.append(f"{prefix}: no instrumented lines found")
            lines.append(f"| `{prefix}` | 0 | 0 | — | ❌ no data |")
            continue
        pct = 100.0 * hit / total
        ok = pct >= args.min_lines
        if not ok:
            failures.append(f"{prefix}: {pct:.1f}% < {args.min_lines:.0f}%")
        lines.append(f"| `{prefix}` | {hit} | {total} | {pct:.1f}% | "
                     f"{'✅ ok' if ok else '❌ below minimum'} |")
        for f in sorted(files):
            fh_, ft = files[f]
            fpct = 100.0 * fh_ / ft if ft else 0.0
            lines.append(f"| &nbsp;&nbsp;`{os.path.basename(f)}` | {fh_} | {ft} | "
                         f"{fpct:.1f}% | |")

    table = "\n".join(lines)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")

    if failures:
        print("\ncoverage gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncoverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
