#!/usr/bin/env python3
"""Perf-regression gate: compare fresh benchmark output against a checked-in
baseline and fail when any metric regresses beyond the threshold.

Two input formats are understood:

* ``--throughput FILE`` — a ``BENCH_throughput.json`` written by
  ``bench_throughput``; every numeric key of its ``extra`` object becomes a
  candidate metric named ``throughput:<key>`` (higher is better).
* ``--serving FILE`` — a ``BENCH_s1_serving.json`` written by
  ``bench_s1_serving``; every numeric key of its ``extra`` object becomes a
  candidate metric named ``s1:<key>`` (latency percentiles are
  lower-is-better, rates higher-is-better — see BASELINE_METRICS).
* ``--gbench FILE`` — Google Benchmark ``--benchmark_out`` JSON; every entry
  becomes ``f9:<name>`` with its ``real_time`` (lower is better).
* ``--fleet-inproc FILE`` / ``--fleet-supervised FILE`` — ``BENCH_fleet.json``
  files from the same grid run in-process and under ``--supervise N``
  (both repeatable: best-of-N is used). This mode is a *relative* gate, not
  a baseline one: it fails when the supervised clean path is more than
  ``--max-fleet-overhead`` slower than in-process, or when the two digest
  chains disagree (the supervised clean path must be bitwise identical).

Only metrics present in the baseline are checked, so the baseline file is
also the allowlist. Refresh it after an intentional perf change with::

    python3 tools/check_perf.py --baseline bench/baselines/throughput_baseline.json \
        --throughput BENCH_throughput.json --gbench BENCH_f9.json --update-baseline

A markdown delta table goes to stdout and, when the ``GITHUB_STEP_SUMMARY``
environment variable is set (GitHub Actions), to the job summary as well.

Exit codes: 0 ok, 1 regression, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone

# Metrics recorded by --update-baseline. Keys are (prefix, metric) with the
# direction a *good* change moves in.
BASELINE_METRICS = {
    "throughput:t1_sessions_per_sec": "higher",
    "throughput:t1_events_per_sec": "higher",
    "throughput:net_sessions_per_sec": "higher",
    "throughput:net_events_per_sec": "higher",
    "throughput:t1_batch4_sessions_per_sec": "higher",
    "throughput:t1_batch8_sessions_per_sec": "higher",
    "throughput:t1_batch32_sessions_per_sec": "higher",
    "f9:BM_EventScheduleAndFire": "lower",
    "f9:BM_VafsPlanDecision": "lower",
    "f9:BM_FullSessionSimulation": "lower",
    "s1:decisions_per_sec": "higher",
    "s1:decision_rtt_p50_us": "lower",
    "s1:decision_rtt_p99_us": "lower",
}

# The serial reference each batch metric is compared against in the
# serial-vs-batch delta table (informational; the regression gate above is
# what fails the build).
BATCH_METRIC_SERIAL_REF = {
    "throughput:t1_batch4_sessions_per_sec": "throughput:t1_sessions_per_sec",
    "throughput:t1_batch8_sessions_per_sec": "throughput:t1_sessions_per_sec",
    "throughput:t1_batch32_sessions_per_sec": "throughput:t1_sessions_per_sec",
}


def load_json(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")


def collect_current(args: argparse.Namespace) -> dict[str, float]:
    """Flattens all provided result files into {metric_name: value}."""
    current: dict[str, float] = {}
    for path in args.throughput or []:
        extra = load_json(path).get("extra", {})
        for key, value in extra.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                current[f"throughput:{key}"] = float(value)
    for path in args.serving or []:
        extra = load_json(path).get("extra", {})
        for key, value in extra.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                current[f"s1:{key}"] = float(value)
    for path in args.gbench or []:
        for bench in load_json(path).get("benchmarks", []):
            name = bench.get("name")
            time = bench.get("real_time")
            if name is not None and isinstance(time, (int, float)):
                current[f"f9:{name}"] = float(time)
    return current


def update_baseline(path: str, current: dict[str, float]) -> int:
    metrics = {}
    missing = []
    for name, direction in BASELINE_METRICS.items():
        if name in current:
            metrics[name] = {"value": current[name], "direction": direction}
        else:
            missing.append(name)
    if not metrics:
        sys.exit("error: none of the baseline metrics are present in the inputs")
    baseline = {
        "comment": "Perf baseline for tools/check_perf.py. Host-specific: refresh "
        "with --update-baseline after intentional perf changes.",
        "host": platform.node() or "unknown",
        "updated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "metrics": metrics,
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    print(f"baseline written: {path} ({len(metrics)} metrics)")
    for name in missing:
        print(f"warning: metric not found in inputs, omitted: {name}")
    return 0


def fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def batch_delta_table(current: dict[str, float]) -> str:
    """Markdown table of batch-mode throughput vs its serial reference.

    Informational (the regression gate handles pass/fail): shows what the
    lockstep batch path delivers relative to one-session-at-a-time on the
    same run, for the job summary.
    """
    rows = []
    for name, ref in BATCH_METRIC_SERIAL_REF.items():
        if name in current and ref in current and current[ref] > 0:
            rows.append((name, current[ref], current[name], current[name] / current[ref]))
    if not rows:
        return ""
    lines = [
        "### Serial vs batch throughput",
        "",
        "| metric | serial | batch | speedup |",
        "|---|---:|---:|---:|",
    ]
    for name, serial, batch, ratio in rows:
        lines.append(f"| `{name}` | {fmt(serial)} | {fmt(batch)} | {ratio:.2f}x |")
    return "\n".join(lines)


def best_fleet_run(paths: list[str], label: str) -> tuple[float, str]:
    """Best (highest) sessions_per_sec across repeats + the shared digest chain.

    Repeats of the same deterministic grid must agree on the digest chain;
    best-of-N throughput is used so a noisy neighbour on one repeat does not
    fail the overhead gate.
    """
    best = 0.0
    digest = None
    for path in paths:
        data = load_json(path)
        rate = data.get("sessions_per_sec")
        chain = data.get("digest_chain")
        if not isinstance(rate, (int, float)) or rate <= 0:
            sys.exit(f"error: {path}: missing or non-positive sessions_per_sec")
        if not isinstance(chain, str) or not chain:
            sys.exit(f"error: {path}: missing digest_chain")
        if digest is None:
            digest = chain
        elif chain != digest:
            sys.exit(
                f"error: {label} repeats disagree on digest_chain "
                f"({digest} vs {chain} in {path}) — the run is not deterministic"
            )
        best = max(best, float(rate))
    return best, digest


def check_fleet_overhead(args: argparse.Namespace) -> int:
    """Gate the supervised clean path: bitwise identical, < max overhead."""
    inproc_rate, inproc_digest = best_fleet_run(args.fleet_inproc, "in-process")
    sup_rate, sup_digest = best_fleet_run(args.fleet_supervised, "supervised")

    overhead = inproc_rate / sup_rate - 1.0
    digests_match = inproc_digest == sup_digest
    over_budget = overhead > args.max_fleet_overhead

    lines = [
        f"### Supervised fleet overhead gate (limit: {args.max_fleet_overhead * 100:.0f}%)",
        "",
        "| path | best sessions/s | digest chain |",
        "|---|---:|---|",
        f"| in-process | {fmt(inproc_rate)} | `{inproc_digest}` |",
        f"| supervised | {fmt(sup_rate)} | `{sup_digest}` |",
        "",
        f"overhead: **{overhead * 100:+.1f}%** — "
        + ("❌ over budget" if over_budget else "✅ within budget")
        + " · digest chains "
        + ("✅ identical" if digests_match else "❌ DIFFER"),
    ]
    table = "\n".join(lines)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")

    failed = False
    if not digests_match:
        print(
            f"\nfleet gate FAILED: supervised digest chain {sup_digest} != "
            f"in-process {inproc_digest} (clean path must be bitwise identical)",
            file=sys.stderr,
        )
        failed = True
    if over_budget:
        print(
            f"\nfleet gate FAILED: supervised overhead {overhead * 100:+.1f}% exceeds "
            f"limit {args.max_fleet_overhead * 100:.0f}%",
            file=sys.stderr,
        )
        failed = True
    if not failed:
        print("\nfleet overhead gate passed")
    return 1 if failed else 0


def check(baseline_path: str, current: dict[str, float], threshold: float) -> int:
    baseline = load_json(baseline_path)
    baseline_metrics = baseline.get("metrics", {})

    # A metric the gate tracks (BASELINE_METRICS) that the current run
    # produced but the checked-in baseline has no entry for means the
    # baseline predates the bench grid — say so instead of silently
    # skipping the new metric (or KeyError-ing below on a malformed entry).
    stale = [
        name
        for name in BASELINE_METRICS
        if name in current and name not in baseline_metrics
    ]
    if stale:
        sys.exit(
            f"error: baseline {baseline_path} has no entry for: "
            + ", ".join(sorted(stale))
            + "\nthe baseline predates these bench metrics — refresh it with "
            "--update-baseline after verifying the numbers"
        )

    rows = []
    failures = []
    for name, spec in baseline_metrics.items():
        if not isinstance(spec, dict) or not isinstance(
            spec.get("value"), (int, float)
        ):
            sys.exit(
                f"error: baseline {baseline_path} entry {name!r} is malformed "
                f"(expected an object with a numeric 'value', got {spec!r}); "
                "refresh it with --update-baseline"
            )
        base = float(spec["value"])
        direction = spec.get("direction", "higher")
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current results")
            rows.append((name, base, None, None, "missing"))
            continue
        # Signed change where positive == improvement.
        change = (cur - base) / base if direction == "higher" else (base - cur) / base
        regressed = change < -threshold
        status = "REGRESSION" if regressed else "ok"
        if regressed:
            failures.append(
                f"{name}: {fmt(cur)} vs baseline {fmt(base)} "
                f"({change * 100:+.1f}%, limit -{threshold * 100:.0f}%)"
            )
        rows.append((name, base, cur, change, status))

    lines = [
        f"### Perf gate (threshold: -{threshold * 100:.0f}%)",
        "",
        "| metric | baseline | current | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base, cur, change, status in rows:
        cur_s = fmt(cur) if cur is not None else "—"
        change_s = f"{change * 100:+.1f}%" if change is not None else "—"
        mark = "✅" if status == "ok" else "❌"
        lines.append(f"| `{name}` | {fmt(base)} | {cur_s} | {change_s} | {mark} {status} |")
    table = "\n".join(lines)
    print(table)

    batch_table = batch_delta_table(current)
    if batch_table:
        print()
        print(batch_table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")
            if batch_table:
                fh.write("\n" + batch_table + "\n")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="checked-in baseline JSON")
    parser.add_argument("--throughput", action="append", metavar="FILE",
                        help="BENCH_throughput.json (repeatable)")
    parser.add_argument("--serving", action="append", metavar="FILE",
                        help="BENCH_s1_serving.json (repeatable)")
    parser.add_argument("--gbench", action="append", metavar="FILE",
                        help="Google Benchmark JSON (repeatable)")
    parser.add_argument("--fleet-inproc", action="append", metavar="FILE",
                        help="BENCH_fleet.json from an in-process run (repeatable)")
    parser.add_argument("--fleet-supervised", action="append", metavar="FILE",
                        help="BENCH_fleet.json from a --supervise run (repeatable)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional regression (default 0.25)")
    parser.add_argument("--max-fleet-overhead", type=float, default=0.05,
                        help="max tolerated supervised-vs-inproc slowdown (default 0.05)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current results")
    args = parser.parse_args()

    fleet_mode = bool(args.fleet_inproc or args.fleet_supervised)
    if fleet_mode:
        if not (args.fleet_inproc and args.fleet_supervised):
            parser.error("fleet mode needs both --fleet-inproc and --fleet-supervised")
        if args.throughput or args.gbench or args.serving or args.update_baseline:
            parser.error("fleet mode does not combine with baseline-gate inputs")
        return check_fleet_overhead(args)

    if not args.throughput and not args.gbench and not args.serving:
        parser.error("provide at least one of --throughput / --gbench / --serving")
    if not args.baseline:
        parser.error("--baseline is required for the baseline gate")

    current = collect_current(args)
    if args.update_baseline:
        return update_baseline(args.baseline, current)
    return check(args.baseline, current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
