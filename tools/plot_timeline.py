#!/usr/bin/env python3
"""Plot the F2 timeline CSV emitted by bench_f2_timeline.

Usage:
    ./build/bench/bench_f2_timeline > f2.txt
    tools/plot_timeline.py f2.txt timeline.png

The bench prints two CSV blocks (ondemand, vafs) surrounded by narration;
this script extracts both and renders frequency, CPU power and buffer level
over time. Requires matplotlib; without it, prints a summary instead.
"""
import sys


def extract_blocks(path):
    """Returns {label: list-of-row-dicts} for each '### label —' CSV block."""
    blocks = {}
    label = None
    header = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line.startswith("###"):
                label = line.split("###")[1].split("—")[0].strip()
                header = None
                blocks[label] = []
            elif label is not None and line.startswith("t_s,"):
                header = line.split(",")
            elif label is not None and header and "," in line:
                parts = line.split(",")
                if len(parts) == len(header):
                    try:
                        blocks[label].append(
                            {k: float(v) for k, v in zip(header, parts)})
                    except ValueError:
                        pass  # narration line
    return {k: v for k, v in blocks.items() if v}


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    blocks = extract_blocks(sys.argv[1])
    if not blocks:
        print("no CSV blocks found — is this bench_f2_timeline output?")
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for label, rows in blocks.items():
            mean_mw = sum(r["cpu_mw"] for r in rows) / len(rows)
            mean_mhz = sum(r["freq_mhz"] for r in rows) / len(rows)
            print(f"{label}: {len(rows)} samples, mean {mean_mw:.0f} mW, "
                  f"mean {mean_mhz:.0f} MHz")
        print("(install matplotlib for plots)")
        return 0

    fig, axes = plt.subplots(3, 1, figsize=(10, 8), sharex=True)
    for label, rows in blocks.items():
        t = [r["t_s"] for r in rows]
        axes[0].step(t, [r["freq_mhz"] for r in rows], where="post", label=label)
        axes[1].plot(t, [r["cpu_mw"] for r in rows], label=label)
        axes[2].plot(t, [r["buffer_s"] for r in rows], label=label)
    axes[0].set_ylabel("frequency (MHz)")
    axes[1].set_ylabel("CPU power (mW)")
    axes[2].set_ylabel("buffer (s)")
    axes[2].set_xlabel("time (s)")
    for ax in axes:
        ax.legend()
        ax.grid(alpha=0.3)
    out = sys.argv[2] if len(sys.argv) > 2 else "timeline.png"
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
