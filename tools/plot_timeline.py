#!/usr/bin/env python3
"""Plot VAFS timeline CSVs (and optionally Chrome trace JSON) from the
observability layer.

Usage:
    ./build/bench/bench_f2_timeline
    tools/plot_timeline.py BENCH_f2.ondemand.timeline.csv \\
                           BENCH_f2.vafs.timeline.csv -o timeline.png

    # Counter series straight out of a Chrome trace export:
    tools/plot_timeline.py --trace-json BENCH_f2.vafs.trace.json -o t.png

Input CSVs use the long-format schema written by obs::write_timeline_csv:

    series,t_us,value
    freq_khz,12000,1800000
    buffer_s,4000000,3.98
    ...

Every sample is plotted — the series are event-driven (a point per
frequency transition / segment arrival / pump), so nothing is downsampled
and the final sample is included. Requires matplotlib for plots; without
it, prints per-series summaries instead.
"""
import argparse
import csv
import json
import os
import sys

# CSV series name -> (axis row, display label, value scale)
PANELS = {
    "freq_khz": (0, "frequency (MHz)", 1e-3),
    "cpu_power_mw": (1, "CPU power (mW)", 1.0),
    "buffer_s": (2, "buffer (s)", 1.0),
    "bandwidth_mbps": (3, "bandwidth (Mbps)", 1.0),
}


def read_timeline_csv(path):
    """Returns {series: [(t_s, value), ...]} keeping every sample."""
    series = {}
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        # Require the columns we read by name, in their canonical order,
        # but tolerate schema-compatible extensions (extra trailing
        # columns) — the bench CSV grew guard-quantile columns the same
        # way, and a strict equality check here would reject any future
        # widening of the timeline schema too.
        required = ["series", "t_us", "value"]
        fields = reader.fieldnames or []
        if fields[: len(required)] != required:
            raise SystemExit(
                f"{path}: expected header to start with 'series,t_us,value', got "
                f"{','.join(fields)}")
        for row in reader:
            series.setdefault(row["series"], []).append(
                (float(row["t_us"]) / 1e6, float(row["value"])))
    return series


def read_trace_json(path):
    """Extracts counter ('ph':'C') series from a Chrome trace export."""
    with open(path) as f:
        doc = json.load(f)
    series = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "C":
            continue
        args = ev.get("args", {})
        if not args:
            continue
        value = next(iter(args.values()))
        series.setdefault(ev["name"], []).append(
            (float(ev["ts"]) / 1e6, float(value)))
    for samples in series.values():
        samples.sort(key=lambda s: s[0])
    return series


def label_for(path):
    name = os.path.basename(path)
    for suffix in (".timeline.csv", ".trace.json", ".csv", ".json"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def summarize(label, series):
    for name in sorted(series):
        samples = series[name]
        values = [v for _, v in samples]
        print(f"{label}/{name}: {len(samples)} samples, "
              f"min {min(values):g}, mean {sum(values) / len(values):g}, "
              f"max {max(values):g}, last t={samples[-1][0]:.3f}s")


def main():
    parser = argparse.ArgumentParser(
        description="Plot obs timeline CSVs / Chrome trace counters.")
    parser.add_argument("inputs", nargs="+",
                        help="timeline CSV files (one curve set per file)")
    parser.add_argument("--trace-json", action="store_true",
                        help="inputs are Chrome trace JSON exports; plot "
                             "their counter tracks")
    parser.add_argument("-o", "--out", default="timeline.png",
                        help="output image (default: timeline.png)")
    args = parser.parse_args()

    loaded = []  # (label, {series: samples})
    for path in args.inputs:
        series = read_trace_json(path) if args.trace_json else read_timeline_csv(path)
        if not series:
            print(f"{path}: no samples found", file=sys.stderr)
            continue
        loaded.append((label_for(path), series))
    if not loaded:
        print("nothing to plot", file=sys.stderr)
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        for label, series in loaded:
            summarize(label, series)
        print("(install matplotlib for plots)")
        return 0

    rows = len(PANELS)
    fig, axes = plt.subplots(rows, 1, figsize=(10, 2.2 * rows), sharex=True)
    for label, series in loaded:
        for name, samples in series.items():
            panel = PANELS.get(name)
            if panel is None:
                continue
            row, _, scale = panel
            t = [s[0] for s in samples]
            v = [s[1] * scale for s in samples]
            if name == "freq_khz":
                axes[row].step(t, v, where="post", label=label)
            else:
                axes[row].plot(t, v, label=label)
    for name, (row, ylabel, _) in PANELS.items():
        axes[row].set_ylabel(ylabel)
        axes[row].grid(alpha=0.3)
        if axes[row].lines:
            axes[row].legend()
    axes[-1].set_xlabel("time (s)")
    fig.tight_layout()
    fig.savefig(args.out, dpi=130)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
